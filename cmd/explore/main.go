// Command explore runs the model checker over grids of bounded
// configurations. By default it is exhaustive: every schedule (and
// optionally every crash placement) of the selected scenario is enumerated
// and its safety properties are checked, turning the repository's sampled
// sweeps into per-configuration proofs. With -sample it switches to the
// probabilistic engine: seeded random schedules (uniform walk, PCT or swarm
// mixing) drawn from the same decision tree — the way into state spaces the
// exhaustive walker cannot enumerate (the BG simulation, large grid cells).
//
// Scenarios are resolved through the spec registry (internal/explore/spec):
// every registered spec is a self-describing harness with typed parameter
// domains, and the flags below are parsed against the selected spec's
// declared domains. `explore -list` enumerates the registry.
//
// Usage:
//
//	explore -list
//	explore -object safe        -n 2,3 -crashes 0,1 [-prune] [-dedup] [-workers 8]
//	explore -object xsafe       -n 2,3 -x 1,2 -crashes 0,1 -prune
//	explore -object commitadopt -n 2 -crashes 0,1 -dedup
//	explore -object commitadopt -n 3 -dedup -symmetry
//	explore -object queue       -n 3 -set ops=1,2 -crashes 1 -dedup
//	explore -object bg          -n 2,3 -t 1 -maxruns 20000
//	explore -object registers   -n 3 -prune -compare
//	explore -object bg          -n 3 -t 1 -sample pct -samples 5000 -depth 8 -seed 7
//	explore -object commitadopt -n 4 -crashes 1 -sample swarm -samples 20000
//	explore -sample pct -allspecs -samples 2000 -seed 1
//
// Grid flags (-n, -x, -t, -crashes, -steps, -probes) accept comma-separated
// value lists and sweep their cartesian product; parameters the spec does
// not declare are rejected when set explicitly — the rejection names the
// offending parameter and prints the spec's declared domains. -set
// name=v1,v2 addresses any declared parameter by name (repeatable), so
// scenario-specific domains (ops, writes, retries, ...) need no dedicated
// flag. Each grid cell prints the visited-run count, pruned branches, tree
// depth, throughput and the exhaustion verdict; any property violation
// aborts with the reproducing decision script.
//
// The BG simulation's decision tree is astronomically deep even for tiny
// configurations: bound it with -maxruns (the run is then a coverage smoke,
// reported as exhausted=false), keep n and t minimal — or switch to -sample.
//
// -compare additionally runs the sequential explorer on every cell and
// verifies that the parallel engine visited the identical state space — the
// determinism guarantee the engine's tests rely on.
//
// -dedup enables state-fingerprint deduplication (visited-state cut-offs;
// bound the store with -dedupmem); specs without a fingerprint (SupportsDedup
// false in -list) reject it up front. Under -dedup the parallel engine's
// visited-run count depends on worker timing, so -compare only verifies the
// exhaustion verdict and reports the sequential run count alongside.
//
// -symmetry additionally keys the visited store by orbit-canonical
// fingerprints (process-permutation symmetry reduction), so states that
// differ only by a renaming of the processes dedup together. It requires
// -dedup, and only specs declaring the symmetry capability ("symmetry" in
// -list) accept it — others reject it up front, like -dedup on a
// fingerprint-less spec. See docs/SYMMETRY.md.
//
// -cpuprofile and -memprofile write pprof profiles of the sweep (the
// throughput-campaign workflow: `make profile` captures the tracked cell,
// `go tool pprof` attributes the hot path). The memory profile is written at
// exit after a final GC, so it reflects retained allocations, not transient
// garbage.
//
// -sample pct|walk|swarm draws -samples seeded runs per grid cell instead of
// enumerating (crash budgets still come from -crashes; -depth sets the PCT
// depth d, -seed the stream seed). Sample i is a pure function of (seed, i),
// so a violating sample prints the reproducing decision script exactly like
// the exhaustive engine, plus its (seed, index) pair. Each cell reports
// samples/sec and the distinct-state coverage estimate; -allspecs sweeps
// every registered spec at its declared defaults and sampling budget (the
// CI sample-smoke mode).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"mpcn/internal/explore"
	"mpcn/internal/explore/sample"
	"mpcn/internal/explore/spec"
	"mpcn/internal/service"

	// Register the built-in scenarios.
	_ "mpcn/internal/explore/sessions"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

type options struct {
	object   string
	list     bool
	grids    map[string][]string
	workers  int
	maxRuns  int
	prune    bool
	dedup    bool
	dedupMem int
	symmetry bool
	compare  bool
	seq      bool
	respawn  bool
	sample   string
	samples  int
	depth    int
	seed     int64
	allSpecs bool
	jsonOut  bool

	cpuprofile string
	memprofile string
}

// startProfiles begins the requested pprof captures and returns the stop
// function run uses as a deferred finalizer on every exit path.
func startProfiles(o options) (func(), error) {
	var cpu *os.File
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if o.memprofile != "" {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "explore: %v\n", err)
				return
			}
			runtime.GC() // retained allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "explore: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// setFlags collects repeatable -set name=v1,v2 assignments.
type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, " ") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	var o options
	var sets setFlags
	named := map[string]*string{}
	fs.StringVar(&o.object, "object", "safe", "spec to check (see -list)")
	fs.BoolVar(&o.list, "list", false, "list the registered specs with their parameter domains and exit")
	for _, g := range []struct{ name, usage, def string }{
		{"n", "process counts (comma-separated grid)", "2"},
		{"x", "consensus numbers (comma-separated grid)", "1"},
		{"t", "resilience (comma-separated grid)", "1"},
		{"crashes", "max crashes per run (comma-separated grid)", "0"},
		{"steps", "per-run step budgets, 0 = default (comma-separated grid)", "0"},
		{"probes", "bounded decide probes per process (comma-separated grid)", "2"},
	} {
		named[g.name] = fs.String(g.name, g.def, g.usage)
	}
	fs.Var(&sets, "set", "grid for any declared spec parameter, name=v1,v2 (repeatable)")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (<= 0 selects the default)")
	fs.IntVar(&o.maxRuns, "maxruns", 0, "abort each cell after this many runs (0 = exhaustive)")
	fs.BoolVar(&o.prune, "prune", false, "enable partial-order reduction")
	fs.BoolVar(&o.dedup, "dedup", false, "enable state-fingerprint deduplication (visited-state cut-offs)")
	fs.IntVar(&o.dedupMem, "dedupmem", 0, "visited-state store budget in MiB (0 = default 64)")
	fs.BoolVar(&o.symmetry, "symmetry", false, "enable symmetry reduction (orbit-canonical fingerprints; needs -dedup)")
	fs.BoolVar(&o.compare, "compare", false, "verify the parallel run count against the sequential explorer")
	fs.BoolVar(&o.seq, "seq", false, "use the sequential explorer only")
	fs.BoolVar(&o.respawn, "respawn", false, "respawn the scheduler per run (pre-session baseline; for comparisons)")
	fs.StringVar(&o.sample, "sample", "", "sampling strategy: pct|walk|swarm (empty = exhaustive exploration)")
	fs.IntVar(&o.samples, "samples", 10000, "sampled runs per grid cell (with -sample)")
	fs.IntVar(&o.depth, "depth", 0, "PCT depth d: d-1 priority-change points per run (0 = spec/engine default)")
	fs.Int64Var(&o.seed, "seed", 1, "base seed of the sampled schedule stream")
	fs.BoolVar(&o.allSpecs, "allspecs", false, "with -sample: sweep every registered spec at its declared defaults and sampling budget")
	fs.BoolVar(&o.jsonOut, "json", false, "emit one JSON result record per grid cell (NDJSON; the exploredd daemon's encoding)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the sweep to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile (after a final GC) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProfiles, profErr := startProfiles(o)
	if profErr != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", profErr)
		return 1
	}
	defer stopProfiles()
	if o.list {
		if o.jsonOut {
			printListJSON(out)
		} else {
			printList(out)
		}
		return 0
	}
	// Only explicitly-set named grid flags enter the parameter grids, so a
	// spec is never asked to validate the unrelated defaults of another
	// spec's convenience flags.
	o.grids = map[string][]string{}
	explicit := map[string]bool{}
	var err error
	fs.Visit(func(f *flag.Flag) {
		explicit[f.Name] = true
		if p, ok := named[f.Name]; ok && err == nil {
			err = addGrid(o.grids, f.Name, *p)
		}
	})
	if err == nil {
		err = rejectInapplicableFlags(o, explicit, len(sets) > 0)
	}
	if err == nil {
		for _, assign := range sets {
			name, vals, ok := strings.Cut(assign, "=")
			if !ok {
				err = fmt.Errorf("bad -set %q, want name=v1,v2", assign)
				break
			}
			if err = addGrid(o.grids, strings.TrimSpace(name), vals); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		return 2
	}
	// Ctrl-C (or SIGTERM) cancels the sweep at the engines' next run
	// boundary instead of leaving worker pools running to their budgets.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if err := dispatch(ctx, o, out); err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		var paramErr *spec.ParamError
		if errors.As(err, &paramErr) {
			printDomains(os.Stderr, paramErr)
		}
		var pe *explore.PropertyError
		if errors.As(err, &pe) {
			fmt.Fprintf(os.Stderr, "replay script:\n  %s\n", strings.Join(pe.Script, "\n  "))
		}
		var se *sample.SampleError
		if errors.As(err, &se) {
			fmt.Fprintf(os.Stderr, "reproduce with: -sample %s -seed %d (violating sample index %d)\n",
				se.Strategy, se.Seed, se.Sample)
		}
		return 1
	}
	return 0
}

// dispatch routes between the exhaustive and the sampling sweeps.
func dispatch(ctx context.Context, o options, out io.Writer) error {
	if o.allSpecs && o.sample == "" {
		return errors.New("-allspecs needs -sample (exhaustive all-spec sweeps would not terminate)")
	}
	if o.sample != "" {
		return sampleSweep(ctx, o, out)
	}
	return sweep(ctx, o, out)
}

// rejectInapplicableFlags fails loudly on flag combinations one engine would
// otherwise silently ignore: exhaustive-only flags under -sample, and
// explicit scenario selection or grids under -allspecs (which sweeps every
// spec at its declared defaults). Silent drops would let the user believe a
// bound or a grid applied when it did not.
func rejectInapplicableFlags(o options, explicit map[string]bool, haveSets bool) error {
	if o.jsonOut && o.compare {
		return errors.New("-compare prints a human-readable comparison; drop it under -json")
	}
	if o.sample != "" {
		for _, name := range []string{"prune", "dedup", "dedupmem", "symmetry", "maxruns", "compare", "respawn"} {
			if explicit[name] {
				return fmt.Errorf("-%s applies to exhaustive exploration only (drop it or drop -sample)", name)
			}
		}
	} else {
		for _, name := range []string{"samples", "depth", "seed", "allspecs"} {
			if explicit[name] {
				return fmt.Errorf("-%s applies to schedule sampling only (add -sample pct|walk|swarm)", name)
			}
		}
	}
	if o.allSpecs {
		if explicit["object"] {
			return errors.New("-allspecs sweeps every registered spec; drop -object (or drop -allspecs to sample one spec)")
		}
		if haveSets || len(o.grids) > 0 {
			return errors.New("-allspecs samples every spec at its declared defaults; grid flags and -set need a single -object")
		}
	}
	return nil
}

// printDomains renders the rejected parameter's declared domain — or, for an
// unknown name, every domain the spec declares — in the -list syntax, so the
// user can correct the invocation without a second lookup.
func printDomains(out io.Writer, e *spec.ParamError) {
	if !e.Unknown {
		fmt.Fprintf(out, "declared domain:\n  -set %s=%s  [%s]  %s\n",
			e.Decl.Name, e.Decl.ValueName(e.Decl.Default), e.Decl.Range(), e.Decl.Doc)
		return
	}
	fmt.Fprintf(out, "declared parameters of %s:\n", e.Spec)
	for _, d := range e.Declared {
		fmt.Fprintf(out, "  -set %s=%s  [%s]  %s\n", d.Name, d.ValueName(d.Default), d.Range(), d.Doc)
	}
}

// addGrid records a raw textual value list; values are resolved against the
// selected spec's declared domains (spec.TextGrid) after lookup, so
// string-domain parameters accept their symbolic names (-set backend=regular).
func addGrid(grids map[string][]string, name, vals string) error {
	if _, dup := grids[name]; dup {
		return fmt.Errorf("parameter %q set twice", name)
	}
	parts := strings.Split(vals, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return fmt.Errorf("parameter %q: empty grid value", name)
		}
		out = append(out, p)
	}
	grids[name] = out
	return nil
}

// resolveGrid expands the raw textual grids into resolved parameter cells
// for s: value names of string-domain parameters resolve against the
// declared domain, everything else parses as a decimal grid.
func resolveGrid(s spec.Spec, raw map[string][]string) ([]spec.Params, error) {
	grids, err := spec.TextGrid(s, raw)
	if err != nil {
		return nil, err
	}
	return spec.Grid(s, grids)
}

// printListJSON enumerates the registry in the daemon's GET /specs encoding.
func printListJSON(out io.Writer) {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(spec.DescribeAll())
}

// printList enumerates the registry: every spec's doc line, parameter
// domains (name, default, valid range) and capability flags.
func printList(out io.Writer) {
	all := spec.All()
	fmt.Fprintf(out, "registered specs (%d):\n", len(all))
	for _, s := range all {
		caps := make([]string, 0, 3)
		if s.SupportsPrune() {
			caps = append(caps, "prune")
		}
		if s.SupportsDedup() {
			caps = append(caps, "dedup")
		}
		if s.SupportsSymmetry() {
			caps = append(caps, "symmetry")
		}
		if len(caps) == 0 {
			caps = append(caps, "none")
		}
		fmt.Fprintf(out, "\n%s — %s\n", s.Name(), s.Doc())
		fmt.Fprintf(out, "  supports: %s\n", strings.Join(caps, ", "))
		if sm := s.Sampling(); sm != (spec.Sampling{}) {
			fmt.Fprintf(out, "  sampling: budget=%d depth=%d\n", sm.Budget, sm.Depth)
		}
		for _, p := range s.Params() {
			fmt.Fprintf(out, "  -set %s=%s  [%s]  %s\n", p.Name, p.ValueName(p.Default), p.Range(), p.Doc)
		}
	}
}

// jsonResult renders one grid cell's outcome in the daemon's Result
// encoding (NDJSON, one record per line). The record is emitted for
// violations too — the caller still aborts the sweep afterwards — so
// scripted consumers see the verdict and replay script on stdout.
func jsonResult(out io.Writer, j *service.Job, est explore.Stats, sst sample.Stats, err error) error {
	return json.NewEncoder(out).Encode(service.NewResult(j, est, sst, err))
}

// exploreJob assembles the service job record of one exhaustive cell, the
// identity under which -json encodes its result (workers normalized as the
// daemon does: 1 = sequential engine).
func exploreJob(s spec.Spec, p spec.Params, o options) *service.Job {
	workers := o.workers
	if o.seq {
		workers = 1
	}
	return &service.Job{
		Spec:   s,
		Params: p,
		Engine: service.Engine{
			Mode:     service.ModeExhaustive,
			Workers:  workers,
			MaxRuns:  o.maxRuns,
			Prune:    o.prune,
			Dedup:    o.dedup,
			DedupMem: o.dedupMem,
			Symmetry: o.symmetry,
		},
	}
}

func sweep(ctx context.Context, o options, out io.Writer) error {
	s, err := spec.Lookup(o.object)
	if err != nil {
		return err
	}
	cells, err := resolveGrid(s, o.grids)
	if err != nil {
		return err
	}
	if !o.jsonOut {
		fmt.Fprintf(out, "exhaustive exploration of %s (prune=%v, workers=%d, maxruns=%d)\n",
			s.Name(), o.prune, o.workers, o.maxRuns)
		fmt.Fprintf(out, "%-40s %10s %8s %6s %10s %10s %s\n",
			"configuration", "runs", "pruned", "depth", "runs/sec", "elapsed", "verdict")
	}
	for _, p := range cells {
		cfg, err := spec.Config(s, p, explore.Config{
			MaxRuns:  o.maxRuns,
			Workers:  o.workers,
			Prune:    o.prune,
			Dedup:    o.dedup,
			DedupMem: o.dedupMem << 20,
			Symmetry: o.symmetry,
			Respawn:  o.respawn,
		})
		if err != nil {
			return err
		}
		var stats explore.Stats
		if o.seq {
			stats, err = explore.ExploreSessionContext(ctx, s.New(p), cfg)
		} else {
			stats, err = explore.ExploreParallelContext(ctx, spec.Factory(s, p), cfg)
		}
		if o.jsonOut {
			if jerr := jsonResult(out, exploreJob(s, p, o), stats, sample.Stats{}, err); jerr != nil {
				return jerr
			}
		}
		if err != nil {
			return fmt.Errorf("spec %q %s: %w", s.Name(), p.Text(s), err)
		}
		if o.jsonOut {
			continue
		}
		verdict := "EXHAUSTED"
		if !stats.Exhausted {
			verdict = "partial (bounded)"
		}
		fmt.Fprintf(out, "%-40s %10d %8d %6d %10.0f %10s %s\n",
			p.Text(s), stats.Runs, stats.Pruned, stats.MaxDepth, stats.RunsPerSec(),
			stats.Elapsed.Round(stats.Elapsed/100+1), verdict)
		if o.dedup {
			fmt.Fprintf(out, "%-40s %s\n", "  (dedup)", stats.Dedup)
		}
		if o.compare && !o.seq {
			seq, err := explore.ExploreSession(s.New(p), cfg)
			if err != nil {
				return fmt.Errorf("spec %q %s (sequential): %w", s.Name(), p.Text(s), err)
			}
			if o.dedup {
				// Parallel dedup run counts are timing-dependent; only the
				// verdict is comparable.
				if seq.Exhausted != stats.Exhausted {
					return fmt.Errorf("%v: parallel/sequential verdict divergence under dedup: par=%v seq=%v",
						p, stats.Exhausted, seq.Exhausted)
				}
			} else if seq.Runs != stats.Runs || seq.Exhausted != stats.Exhausted || seq.Pruned != stats.Pruned {
				return fmt.Errorf("%v: parallel/sequential divergence: par={runs:%d pruned:%d} seq={runs:%d pruned:%d}",
					p, stats.Runs, stats.Pruned, seq.Runs, seq.Pruned)
			}
			fmt.Fprintf(out, "%-40s %10d %8d %6d %10.0f %10s sequential check OK\n",
				"  (sequential)", seq.Runs, seq.Pruned, seq.MaxDepth, seq.RunsPerSec(),
				seq.Elapsed.Round(seq.Elapsed/100+1))
		}
	}
	return nil
}

// sampleSweep runs the probabilistic engine over the selected spec's grid
// cells (or, with -allspecs, over every registered spec at its declared
// defaults and sampling budget).
func sampleSweep(ctx context.Context, o options, out io.Writer) error {
	var specs []spec.Spec
	if o.allSpecs {
		specs = spec.All()
	} else {
		s, err := spec.Lookup(o.object)
		if err != nil {
			return err
		}
		specs = []spec.Spec{s}
	}
	if !o.jsonOut {
		fmt.Fprintf(out, "schedule sampling: strategy=%s samples=%d seed=%d workers=%d\n",
			o.sample, o.samples, o.seed, o.workers)
		fmt.Fprintf(out, "%-40s %10s %10s %6s %12s %10s %s\n",
			"configuration", "samples", "distinct", "depth", "samples/sec", "elapsed", "verdict")
	}
	for _, s := range specs {
		grids := o.grids
		if o.allSpecs {
			grids = nil // declared defaults only; grid flags may not apply to every spec
		}
		cells, err := resolveGrid(s, grids)
		if err != nil {
			return err
		}
		for _, p := range cells {
			cfg := sample.Config{
				Samples:    o.samples,
				Seed:       o.seed,
				MaxCrashes: p[spec.ParamCrashes],
				MaxSteps:   p[spec.ParamSteps],
				Depth:      o.depth,
				Workers:    o.workers,
				Coverage:   true,
			}
			if cfg.Depth <= 0 {
				cfg.Depth = s.Sampling().Depth
			}
			if o.allSpecs {
				if b := s.Sampling().Budget; b > 0 && b < cfg.Samples {
					cfg.Samples = b
				}
				// Unbounded trees walk to the engine's step default on most
				// schedules; bound the smoke's runs so -allspecs stays quick.
				if spec.Unbounded(s) && cfg.MaxSteps <= 0 {
					cfg.MaxSteps = 800
				}
			}
			var stats sample.Stats
			if o.seq {
				stats, err = sample.RunContext(ctx, s.New(p), o.sample, cfg)
			} else {
				stats, err = sample.RunParallelContext(ctx, spec.Factory(s, p), o.sample, cfg)
			}
			if o.jsonOut {
				workers := o.workers
				if o.seq {
					workers = 1
				}
				j := &service.Job{
					Spec:   s,
					Params: p,
					Engine: service.Engine{
						Mode:     service.ModeSample,
						Workers:  workers,
						Strategy: o.sample,
						Samples:  cfg.Samples,
						Depth:    cfg.Depth,
					},
					Seed: o.seed,
				}
				if jerr := jsonResult(out, j, explore.Stats{}, stats, err); jerr != nil {
					return jerr
				}
			}
			if err != nil {
				return fmt.Errorf("spec %q %s: %w", s.Name(), p.Text(s), err)
			}
			if o.jsonOut {
				continue
			}
			label := fmt.Sprintf("%s %s", s.Name(), p.Text(s))
			fmt.Fprintf(out, "%-40s %10d %10d %6d %12.0f %10s SAMPLED\n",
				label, stats.Samples, stats.Distinct, stats.MaxDepth, stats.SamplesPerSec(),
				stats.Elapsed.Round(stats.Elapsed/100+1))
			if stats.PCTBound > 0 {
				d := cfg.Depth
				if d <= 0 {
					d = sample.DefaultDepth
				}
				k := cfg.MaxSteps
				if k <= 0 {
					k = sample.DefaultMaxSteps
				}
				fmt.Fprintf(out, "%-40s per-run depth-%d bug bound >= %.3g (n=%d, k=%d; observed depth %d — tighten -steps toward it to sharpen placement and bound)\n",
					"  (pct)", d, stats.PCTBound, stats.Procs, k, stats.MaxDepth)
			}
		}
	}
	return nil
}
