// Command explore runs the exhaustive model checker over grids of bounded
// configurations: every schedule (and optionally every crash placement) of
// the selected object is enumerated and its safety properties are checked,
// turning the repository's sampled sweeps into per-configuration proofs.
//
// Usage:
//
//	explore -object safe        -n 2,3 -crashes 0,1 [-prune] [-dedup] [-workers 8]
//	explore -object xsafe       -n 2,3 -x 1,2 -crashes 0,1 -prune
//	explore -object commitadopt -n 2 -crashes 0,1 -dedup
//	explore -object bg          -n 2,3 -t 1 -maxruns 20000
//	explore -object registers   -n 3 -prune -compare
//
// Grid flags (-n, -x, -t, -crashes, -steps) accept comma-separated value
// lists and sweep their cartesian product. Each cell prints the visited-run
// count, pruned branches, tree depth, throughput and the exhaustion verdict;
// any property violation aborts with the reproducing decision script.
//
// The BG simulation's decision tree is astronomically deep even for tiny
// configurations: bound it with -maxruns (the run is then a coverage smoke,
// reported as exhausted=false) or keep n and t minimal.
//
// -compare additionally runs the sequential explorer on every cell and
// verifies that the parallel engine visited the identical state space — the
// determinism guarantee the engine's tests rely on.
//
// -dedup enables state-fingerprint deduplication (visited-state cut-offs;
// bound the store with -dedupmem). Under -dedup the parallel engine's
// visited-run count depends on worker timing, so -compare only verifies the
// exhaustion verdict and reports the sequential run count alongside.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mpcn/internal/explore"
	"mpcn/internal/explore/sessions"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

type options struct {
	object   string
	ns       []int
	xs       []int
	ts       []int
	crashes  []int
	steps    []int
	probes   int
	workers  int
	maxRuns  int
	prune    bool
	dedup    bool
	dedupMem int
	compare  bool
	seq      bool
	respawn  bool
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	var o options
	var ns, xs, ts, crashes, steps string
	fs.StringVar(&o.object, "object", "safe", "object to check: safe|xsafe|commitadopt|bg|registers")
	fs.StringVar(&ns, "n", "2", "process counts (comma-separated grid)")
	fs.StringVar(&xs, "x", "1", "consensus numbers for xsafe (comma-separated grid)")
	fs.StringVar(&ts, "t", "1", "resilience for bg (comma-separated grid)")
	fs.StringVar(&crashes, "crashes", "0", "max crashes per run (comma-separated grid)")
	fs.StringVar(&steps, "steps", "0", "per-run step budgets, 0 = default (comma-separated grid)")
	fs.IntVar(&o.probes, "probes", 2, "bounded decide probes per process (safe/xsafe)")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (<= 0 selects the default)")
	fs.IntVar(&o.maxRuns, "maxruns", 0, "abort each cell after this many runs (0 = exhaustive)")
	fs.BoolVar(&o.prune, "prune", false, "enable partial-order reduction")
	fs.BoolVar(&o.dedup, "dedup", false, "enable state-fingerprint deduplication (visited-state cut-offs)")
	fs.IntVar(&o.dedupMem, "dedupmem", 0, "visited-state store budget in MiB (0 = default 64)")
	fs.BoolVar(&o.compare, "compare", false, "verify the parallel run count against the sequential explorer")
	fs.BoolVar(&o.seq, "seq", false, "use the sequential explorer only")
	fs.BoolVar(&o.respawn, "respawn", false, "respawn the scheduler per run (pre-session baseline; for comparisons)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var err error
	if o.ns, err = parseGrid(ns); err == nil {
		if o.xs, err = parseGrid(xs); err == nil {
			if o.ts, err = parseGrid(ts); err == nil {
				if o.crashes, err = parseGrid(crashes); err == nil {
					o.steps, err = parseGrid(steps)
				}
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		return 2
	}
	if err := sweep(o, out); err != nil {
		fmt.Fprintf(os.Stderr, "explore: %v\n", err)
		var pe *explore.PropertyError
		if errors.As(err, &pe) {
			fmt.Fprintf(os.Stderr, "replay script:\n  %s\n", strings.Join(pe.Script, "\n  "))
		}
		return 1
	}
	return 0
}

func parseGrid(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad grid value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// cell is one grid configuration.
type cell struct {
	n, x, t, crashes, steps int
}

func (c cell) String() string {
	return fmt.Sprintf("n=%d x=%d t=%d crashes=%d steps=%d", c.n, c.x, c.t, c.crashes, c.steps)
}

func sweep(o options, out io.Writer) error {
	cells := make([]cell, 0, len(o.ns)*len(o.xs)*len(o.crashes)*len(o.steps))
	for _, n := range o.ns {
		for _, x := range o.xs {
			for _, t := range o.ts {
				for _, cr := range o.crashes {
					for _, st := range o.steps {
						cells = append(cells, cell{n: n, x: x, t: t, crashes: cr, steps: st})
					}
				}
			}
		}
	}
	fmt.Fprintf(out, "exhaustive exploration of %s (prune=%v, workers=%d, maxruns=%d)\n",
		o.object, o.prune, o.workers, o.maxRuns)
	fmt.Fprintf(out, "%-40s %10s %8s %6s %10s %10s %s\n",
		"configuration", "runs", "pruned", "depth", "runs/sec", "elapsed", "verdict")
	for _, c := range cells {
		newSession, err := sessionFor(o, c)
		if err != nil {
			return fmt.Errorf("%v: %w", c, err)
		}
		cfg := explore.Config{
			MaxCrashes: c.crashes,
			MaxSteps:   c.steps,
			MaxRuns:    o.maxRuns,
			Workers:    o.workers,
			Prune:      o.prune,
			Dedup:      o.dedup,
			DedupMem:   o.dedupMem << 20,
			Respawn:    o.respawn,
		}
		var stats explore.Stats
		if o.seq {
			stats, err = explore.ExploreSession(newSession(), cfg)
		} else {
			stats, err = explore.ExploreParallel(newSession, cfg)
		}
		if err != nil {
			return fmt.Errorf("%v: %w", c, err)
		}
		verdict := "EXHAUSTED"
		if !stats.Exhausted {
			verdict = "partial (bounded)"
		}
		fmt.Fprintf(out, "%-40s %10d %8d %6d %10.0f %10s %s\n",
			c, stats.Runs, stats.Pruned, stats.MaxDepth, stats.RunsPerSec(),
			stats.Elapsed.Round(stats.Elapsed/100+1), verdict)
		if o.dedup {
			fmt.Fprintf(out, "%-40s %s\n", "  (dedup)", stats.Dedup)
		}
		if o.compare && !o.seq {
			seq, err := explore.ExploreSession(newSession(), cfg)
			if err != nil {
				return fmt.Errorf("%v (sequential): %w", c, err)
			}
			if o.dedup {
				// Parallel dedup run counts are timing-dependent; only the
				// verdict is comparable.
				if seq.Exhausted != stats.Exhausted {
					return fmt.Errorf("%v: parallel/sequential verdict divergence under dedup: par=%v seq=%v",
						c, stats.Exhausted, seq.Exhausted)
				}
			} else if seq.Runs != stats.Runs || seq.Exhausted != stats.Exhausted || seq.Pruned != stats.Pruned {
				return fmt.Errorf("%v: parallel/sequential divergence: par={runs:%d pruned:%d} seq={runs:%d pruned:%d}",
					c, stats.Runs, stats.Pruned, seq.Runs, seq.Pruned)
			}
			fmt.Fprintf(out, "%-40s %10d %8d %6d %10.0f %10s sequential check OK\n",
				"  (sequential)", seq.Runs, seq.Pruned, seq.MaxDepth, seq.RunsPerSec(),
				seq.Elapsed.Round(seq.Elapsed/100+1))
		}
	}
	return nil
}

// sessionFor builds the per-worker session factory for one grid cell. The
// harnesses themselves (bodies + checkers) live in explore/sessions, shared
// with the E16 experiments and the benchmarks.
func sessionFor(o options, c cell) (func() explore.Session, error) {
	if c.n < 1 {
		return nil, fmt.Errorf("need n >= 1")
	}
	switch o.object {
	case "safe":
		return sessions.SafeAgreement(c.n, o.probes, nil), nil
	case "xsafe":
		if c.x < 1 || c.x > c.n {
			return nil, fmt.Errorf("xsafe needs 1 <= x <= n")
		}
		return sessions.XSafe(c.n, c.x, o.probes), nil
	case "commitadopt":
		return sessions.CommitAdopt(c.n), nil
	case "bg":
		if c.t < 0 || c.t >= c.n {
			return nil, fmt.Errorf("bg needs 0 <= t < n")
		}
		return sessions.BG(c.n, c.t)
	case "registers":
		return sessions.Registers(c.n, 2), nil
	default:
		return nil, fmt.Errorf("unknown object %q", o.object)
	}
}
