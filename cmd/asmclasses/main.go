// Command asmclasses prints the equivalence-class partition of §5.4: for a
// fixed failure bound t', the models ASM(n, t', x) for x = 1..n grouped by
// their level ⌊t'/x⌋, strongest class first, with the canonical
// representative and the t' interval of each class.
//
// Usage:
//
//	asmclasses [-n 20] [-t 8]
//
// The defaults reproduce the paper's worked example (t' = 8).
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcn/internal/model"
)

func main() {
	os.Exit(run())
}

func run() int {
	n := flag.Int("n", 20, "number of processes")
	tPrime := flag.Int("t", 8, "failure bound t'")
	flag.Parse()

	classes, err := model.Classes(*n, *tPrime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asmclasses: %v\n", err)
		return 1
	}
	fmt.Printf("equivalence classes of ASM(n=%d, t'=%d, x) for x = 1..%d (§5.4)\n\n", *n, *tPrime, *n)
	fmt.Printf("%-8s %-14s %-16s %-20s %-18s\n",
		"level", "x values", "canonical", "t' range at min x", "solves k-set for")
	for _, c := range classes {
		xLo, xHi := c.Xs[len(c.Xs)-1], c.Xs[0]
		xs := fmt.Sprintf("%d..%d", xLo, xHi)
		if xLo == xHi {
			xs = fmt.Sprintf("%d", xLo)
		}
		lo, hi := model.EquivalentRange(c.Level, xLo)
		fmt.Printf("%-8d %-14s %-16s %-20s k > %d\n",
			c.Level, xs, c.Canonical.String(), fmt.Sprintf("t'∈[%d,%d]", lo, hi), c.Level)
	}
	fmt.Printf("\n%d classes; ASM(n, t', x) ≃ ASM(n, t, 1) iff t·x <= t' <= t·x + (x-1)\n", len(classes))
	return 0
}
