// Command experiments re-runs every experiment of the reproduction
// (E1..E16: the paper's artifacts, the extension experiments, and the
// exhaustive-coverage proofs) and prints a paper-claim vs. measured table.
//
// Usage:
//
//	experiments [-only E9]
//
// The process exits non-zero if any experiment's observation contradicts the
// paper's claim.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcn/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "run only experiments whose id contains this substring (e.g. E9)")
	flag.Parse()

	rows := experiments.All()
	if *only != "" {
		filtered := rows[:0]
		for _, r := range rows {
			if strings.Contains(r.Experiment, *only) {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matches %q\n", *only)
		return 2
	}

	fmt.Println("The Multiplicative Power of Consensus Numbers (Imbs & Raynal 2010)")
	fmt.Println("reproduction experiments: paper claim vs. measured")
	fmt.Println()
	fmt.Print(experiments.Table(rows))
	if !experiments.Passed(rows) {
		fmt.Fprintln(os.Stderr, "experiments: FAILURES above")
		return 1
	}
	fmt.Printf("\nall %d rows consistent with the paper\n", len(rows))
	return 0
}
