package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"mpcn/internal/sched"
)

func baseOptions() options {
	return options{
		sim:  "forward",
		task: "kset",
		n:    4,
		t1:   3,
		x1:   2,
		t2:   1,
		x2:   1,
		seed: 1,
	}
}

func TestExecuteAllSimulations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"forward", func(o *options) { o.sim = "forward" }},
		{"bg", func(o *options) { o.sim = "bg"; o.t1 = 1 }},
		{"reverse", func(o *options) {
			o.sim = "reverse"
			o.n, o.t1, o.t2, o.x2 = 5, 1, 3, 2
		}},
		{"colored", func(o *options) {
			o.sim = "colored"
			o.n, o.t1, o.x1 = 7, 3, 1
			o.n2, o.t2, o.x2 = 5, 2, 2
		}},
		{"genbg", func(o *options) { o.sim = "genbg"; o.n, o.t1, o.x1 = 6, 3, 2 }},
		{"direct kset", func(o *options) { o.sim = "direct"; o.n, o.t1, o.x1 = 6, 2, 3 }},
		{"direct consensus", func(o *options) {
			o.sim = "direct"
			o.task = "consensus"
			o.n, o.t1, o.x1 = 4, 1, 2
		}},
		{"direct renaming", func(o *options) {
			o.sim = "direct"
			o.task = "renaming"
			o.n, o.x1 = 4, 1
		}},
		{"with trace", func(o *options) { o.trace = 5 }},
		{"colored n2 defaults to n", func(o *options) {
			o.sim = "colored"
			o.n, o.t1, o.x1 = 5, 1, 1
			o.n2, o.t2, o.x2 = 0, 2, 2
		}},
		{"direct with trace and steps", func(o *options) {
			o.sim = "direct"
			o.n, o.t1, o.x1 = 4, 1, 2
			o.trace, o.steps = 8, 4096
		}},
		{"different seed", func(o *options) { o.seed = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			if err := execute(o); err != nil {
				t.Fatalf("execute(%+v): %v", o, err)
			}
		})
	}
}

func TestExecuteRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"unknown sim", func(o *options) { o.sim = "nope" }},
		{"unknown task", func(o *options) { o.sim = "direct"; o.task = "nope" }},
		{"bad model", func(o *options) { o.t1 = 9 }},
		{"forward hypothesis", func(o *options) { o.t2 = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			if err := execute(o); err == nil {
				t.Fatalf("execute(%+v) should fail", o)
			}
		})
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestExecuteReportsWedgedRuns: a tiny step budget wedges the simulation;
// the report must say so (and the vacuously-valid task still validates).
func TestExecuteReportsWedgedRuns(t *testing.T) {
	o := baseOptions()
	o.sim = "bg"
	o.t1 = 1
	o.steps = 3
	out := captureStdout(t, func() {
		if err := execute(o); err != nil {
			t.Errorf("execute(%+v): %v", o, err)
		}
	})
	if !strings.Contains(out, "step budget exhausted") {
		t.Fatalf("no wedged-run note in:\n%s", out)
	}
	if !strings.Contains(out, "VALID") {
		t.Fatalf("no validation verdict in:\n%s", out)
	}
}

// TestPrintHelpers: the outcome table renders decisions and statuses, and
// the trace printer honours its limit.
func TestPrintHelpers(t *testing.T) {
	res := &sched.Result{
		Outcomes: []sched.Outcome{
			{Status: sched.StatusDecided, Decided: true, Value: 7, Steps: 3},
			{Status: sched.StatusCrashed, Steps: 1},
		},
		Steps: 4,
		Trace: []sched.TraceEntry{
			{Proc: 0, Label: sched.Intern("reg.write")},
			{Proc: 1, Label: sched.Intern("reg.read")},
			{Proc: 0, Label: sched.Intern("snap.scan")},
		},
	}
	out := captureStdout(t, func() {
		printOutcomes(res)
		printTrace(res, 2)
		printTrace(res, 0) // disabled: must print nothing
	})
	for _, want := range []string{"proc 0: decided", "decision=7", "proc 1: crashed", "decision=-", "reg.write", "q1 reg.read"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "snap.scan") {
		t.Errorf("trace limit 2 ignored:\n%s", out)
	}
	if got := strings.Count(out, "schedule prefix"); got != 1 {
		t.Errorf("printTrace(0) printed a header (count %d)", got)
	}
}

func TestPickAlg(t *testing.T) {
	if alg, task, err := pickAlg("kset", 4, 2, 8); err != nil || alg == nil || task == nil {
		t.Fatalf("kset with x>1: %v", err)
	}
	if alg, _, err := pickAlg("kset", 2, 1, 4); err != nil || alg == nil {
		t.Fatalf("kset with x=1: %v", err)
	}
	if _, task, err := pickAlg("renaming", 0, 1, 4); err != nil || task.Name() != "7-renaming" {
		t.Fatalf("renaming task: %v", err)
	}
	if _, _, err := pickAlg("bogus", 0, 1, 4); err == nil {
		t.Fatal("bogus task accepted")
	}
}
