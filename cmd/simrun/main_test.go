package main

import (
	"testing"
)

func baseOptions() options {
	return options{
		sim:  "forward",
		task: "kset",
		n:    4,
		t1:   3,
		x1:   2,
		t2:   1,
		x2:   1,
		seed: 1,
	}
}

func TestExecuteAllSimulations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"forward", func(o *options) { o.sim = "forward" }},
		{"bg", func(o *options) { o.sim = "bg"; o.t1 = 1 }},
		{"reverse", func(o *options) {
			o.sim = "reverse"
			o.n, o.t1, o.t2, o.x2 = 5, 1, 3, 2
		}},
		{"colored", func(o *options) {
			o.sim = "colored"
			o.n, o.t1, o.x1 = 7, 3, 1
			o.n2, o.t2, o.x2 = 5, 2, 2
		}},
		{"genbg", func(o *options) { o.sim = "genbg"; o.n, o.t1, o.x1 = 6, 3, 2 }},
		{"direct kset", func(o *options) { o.sim = "direct"; o.n, o.t1, o.x1 = 6, 2, 3 }},
		{"direct consensus", func(o *options) {
			o.sim = "direct"
			o.task = "consensus"
			o.n, o.t1, o.x1 = 4, 1, 2
		}},
		{"direct renaming", func(o *options) {
			o.sim = "direct"
			o.task = "renaming"
			o.n, o.x1 = 4, 1
		}},
		{"with trace", func(o *options) { o.trace = 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			if err := execute(o); err != nil {
				t.Fatalf("execute(%+v): %v", o, err)
			}
		})
	}
}

func TestExecuteRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"unknown sim", func(o *options) { o.sim = "nope" }},
		{"unknown task", func(o *options) { o.sim = "direct"; o.task = "nope" }},
		{"bad model", func(o *options) { o.t1 = 9 }},
		{"forward hypothesis", func(o *options) { o.t2 = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mut(&o)
			if err := execute(o); err == nil {
				t.Fatalf("execute(%+v) should fail", o)
			}
		})
	}
}

func TestPickAlg(t *testing.T) {
	if alg, task, err := pickAlg("kset", 4, 2, 8); err != nil || alg == nil || task == nil {
		t.Fatalf("kset with x>1: %v", err)
	}
	if alg, _, err := pickAlg("kset", 2, 1, 4); err != nil || alg == nil {
		t.Fatalf("kset with x=1: %v", err)
	}
	if _, task, err := pickAlg("renaming", 0, 1, 4); err != nil || task.Name() != "7-renaming" {
		t.Fatalf("renaming task: %v", err)
	}
	if _, _, err := pickAlg("bogus", 0, 1, 4); err == nil {
		t.Fatal("bogus task accepted")
	}
}
