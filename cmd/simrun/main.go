// Command simrun executes one simulation scenario with full control over
// models, adversary seed, crashes and tracing — the interactive entry point
// for exploring the paper's reductions.
//
// Usage:
//
//	simrun -sim forward -n 4 -t1 3 -x1 2 -t2 1 [-seed 7] [-trace 40]
//	simrun -sim reverse -n 5 -t1 1 -t2 3 -x2 2
//	simrun -sim colored -n 7 -t1 3 -n2 5 -t2 2 -x2 2
//	simrun -sim bg      -n 6 -t1 2
//	simrun -sim direct  -n 5 -t1 2 -x1 3 -task consensus
//
// Simulations pick a canonical source algorithm per task: grouped k-set for
// models with x > 1, snapshot k-set for read/write models, consensus via an
// x-ported object, or wait-free renaming (colored).
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcn/internal/algorithms"
	"mpcn/internal/bg"
	"mpcn/internal/core"
	"mpcn/internal/model"
	"mpcn/internal/sched"
	"mpcn/internal/tasks"
)

func main() {
	os.Exit(run())
}

type options struct {
	sim   string
	task  string
	n     int
	t1    int
	x1    int
	n2    int
	t2    int
	x2    int
	seed  int64
	trace int
	steps int
}

func run() int {
	var o options
	flag.StringVar(&o.sim, "sim", "forward", "simulation: direct|bg|forward|reverse|colored|genbg")
	flag.StringVar(&o.task, "task", "kset", "task: kset|consensus|renaming")
	flag.IntVar(&o.n, "n", 4, "simulated processes n")
	flag.IntVar(&o.t1, "t1", 3, "source failure bound")
	flag.IntVar(&o.x1, "x1", 2, "source consensus number")
	flag.IntVar(&o.n2, "n2", 0, "target processes (colored; default n)")
	flag.IntVar(&o.t2, "t2", 1, "target failure bound")
	flag.IntVar(&o.x2, "x2", 1, "target consensus number")
	flag.Int64Var(&o.seed, "seed", 1, "adversary seed")
	flag.IntVar(&o.trace, "trace", 0, "print the first N scheduled steps")
	flag.IntVar(&o.steps, "steps", 0, "step budget (0 = default)")
	flag.Parse()

	if err := execute(o); err != nil {
		fmt.Fprintf(os.Stderr, "simrun: %v\n", err)
		return 1
	}
	return 0
}

func execute(o options) error {
	inputs := tasks.DistinctInputs(o.n)
	schedCfg := sched.Config{Seed: o.seed, TraceCapacity: o.trace, MaxSteps: o.steps}

	var (
		r    *bg.Result
		err  error
		task tasks.Task
	)
	switch o.sim {
	case "direct":
		alg, tk, aerr := pickAlg(o.task, o.t1, o.x1, o.n)
		if aerr != nil {
			return aerr
		}
		task = tk
		res, derr := algorithms.Direct(alg, inputs, o.x1, schedCfg)
		if derr != nil {
			return derr
		}
		return reportDirect(task, inputs, res, o)
	case "bg":
		alg := algorithms.SnapshotKSet{T: o.t1}
		task = tasks.KSet{K: o.t1 + 1}
		r, err = bg.Simulate(alg, inputs, o.t1, schedCfg)
	case "forward":
		src, merr := model.New(o.n, o.t1, o.x1)
		if merr != nil {
			return merr
		}
		dst, merr := model.New(o.n, o.t2, 1)
		if merr != nil {
			return merr
		}
		k := src.Level() + 1
		task = tasks.KSet{K: k}
		r, err = core.ForwardSim(algorithms.GroupedKSet{K: k, X: o.x1}, inputs, src, dst, schedCfg)
	case "reverse":
		src, merr := model.New(o.n, o.t1, 1)
		if merr != nil {
			return merr
		}
		dst, merr := model.New(o.n, o.t2, o.x2)
		if merr != nil {
			return merr
		}
		task = tasks.KSet{K: o.t1 + 1}
		r, err = core.ReverseSim(algorithms.SnapshotKSet{T: o.t1}, inputs, src, dst, schedCfg)
	case "colored":
		n2 := o.n2
		if n2 == 0 {
			n2 = o.n
		}
		src, merr := model.New(o.n, o.t1, o.x1)
		if merr != nil {
			return merr
		}
		dst, merr := model.New(n2, o.t2, o.x2)
		if merr != nil {
			return merr
		}
		task = tasks.Renaming{M: 2*o.n - 1}
		r, err = core.ColoredSim(algorithms.Renaming{}, inputs, src, dst, schedCfg)
	case "genbg":
		src, merr := model.New(o.n, o.t1, o.x1)
		if merr != nil {
			return merr
		}
		k := src.Level() + 1
		task = tasks.KSet{K: k}
		var alg algorithms.Algorithm = algorithms.SnapshotKSet{T: o.t1}
		if o.x1 > 1 {
			alg = algorithms.GroupedKSet{K: k, X: o.x1}
		}
		r, err = core.GeneralizedBG(alg, inputs, src, schedCfg)
	default:
		return fmt.Errorf("unknown -sim %q", o.sim)
	}
	if err != nil {
		return err
	}
	return reportSim(task, inputs, r, o)
}

func pickAlg(task string, t, x, n int) (algorithms.Algorithm, tasks.Task, error) {
	switch task {
	case "kset":
		if x > 1 {
			k := t/x + 1
			return algorithms.GroupedKSet{K: k, X: x}, tasks.KSet{K: k}, nil
		}
		return algorithms.SnapshotKSet{T: t}, tasks.KSet{K: t + 1}, nil
	case "consensus":
		return algorithms.ConsensusViaXCons{X: x}, tasks.Consensus{}, nil
	case "renaming":
		return algorithms.Renaming{}, tasks.Renaming{M: 2*n - 1}, nil
	default:
		return nil, nil, fmt.Errorf("unknown -task %q", task)
	}
}

func reportDirect(task tasks.Task, inputs []any, res *sched.Result, o options) error {
	fmt.Printf("direct run of %s: %d processes, %d steps, %d crashes\n",
		task.Name(), len(res.Outcomes), res.Steps, res.Crashes)
	printOutcomes(res)
	printTrace(res, o.trace)
	outputs := make([]any, len(res.Outcomes))
	for i, oc := range res.Outcomes {
		if oc.Decided {
			outputs[i] = oc.Value
		}
	}
	if err := task.Validate(inputs, outputs); err != nil {
		return err
	}
	fmt.Printf("task %s: VALID\n", task.Name())
	return nil
}

func reportSim(task tasks.Task, inputs []any, r *bg.Result, o options) error {
	fmt.Printf("%s simulation of %s: %d simulators, %d steps, %d crashes\n",
		o.sim, task.Name(), len(r.Sched.Outcomes), r.Sched.Steps, r.Sched.Crashes)
	printOutcomes(r.Sched)
	printTrace(r.Sched, o.trace)
	var err error
	if task.Kind() == tasks.Colored {
		err = core.ValidateColored(task, inputs, r)
	} else {
		err = core.ValidateColorless(task, inputs, r)
	}
	if err != nil {
		return err
	}
	fmt.Printf("task %s: VALID\n", task.Name())
	return nil
}

func printOutcomes(res *sched.Result) {
	for i, oc := range res.Outcomes {
		val := "-"
		if oc.Decided {
			val = fmt.Sprintf("%v", oc.Value)
		}
		fmt.Printf("  proc %d: %-8s decision=%-6s steps=%d\n", i, oc.Status, val, oc.Steps)
	}
	if res.BudgetExhausted {
		fmt.Println("  (step budget exhausted: run wedged)")
	}
}

func printTrace(res *sched.Result, limit int) {
	if limit <= 0 {
		return
	}
	fmt.Println("schedule prefix:")
	for i, te := range res.Trace {
		if i >= limit {
			break
		}
		fmt.Printf("  %4d: q%d %s\n", i, te.Proc, te.Label)
	}
}
