// Command linkcheck validates the repository's markdown cross-references:
// every relative link target in the given files (or directories, scanned for
// *.md) must exist, and every same-file #anchor must match a heading. It is
// the docs half of `make docs-check` (CI's docs/health job).
//
// External links (http, https, mailto) are deliberately NOT fetched: CI must
// stay hermetic. They are only checked for obvious malformation (empty
// target).
//
// Usage:
//
//	linkcheck README.md docs examples/README.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(1)
		}
		if info.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "*.md"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
				os.Exit(1)
			}
			files = append(files, matches...)
		} else {
			files = append(files, arg)
		}
	}
	broken := 0
	for _, f := range files {
		broken += checkFile(f)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d file(s) clean\n", len(files))
}

// linkRe matches inline markdown links [text](target); targets with spaces
// or nested parens are out of scope for this repository's docs.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// codeFenceRe strips fenced code blocks so example snippets (which legally
// contain pseudo-links) are not checked.
var codeFenceRe = regexp.MustCompile("(?s)```.*?```")

func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		return 1
	}
	content := string(data)
	anchors := headingAnchors(content)
	body := codeFenceRe.ReplaceAllString(content, "")
	broken := 0
	for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
		target := m[1]
		switch {
		case target == "":
			fmt.Fprintf(os.Stderr, "%s: empty link target\n", path)
			broken++
		case strings.HasPrefix(target, "http://"),
			strings.HasPrefix(target, "https://"),
			strings.HasPrefix(target, "mailto:"):
			// External: left to humans; CI stays offline.
		case strings.HasPrefix(target, "#"):
			if !anchors[strings.TrimPrefix(target, "#")] {
				fmt.Fprintf(os.Stderr, "%s: broken anchor %s\n", path, target)
				broken++
			}
		default:
			rel := target
			if i := strings.IndexByte(rel, '#'); i >= 0 {
				rel = rel[:i] // cross-file anchors: check file existence only
			}
			resolved := filepath.Join(filepath.Dir(path), rel)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %s (resolved %s)\n", path, target, resolved)
				broken++
			}
		}
	}
	return broken
}

// headingAnchors collects the GitHub-style anchor slugs of every heading.
func headingAnchors(content string) map[string]bool {
	anchors := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		anchors[slugify(text)] = true
	}
	return anchors
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase, spaces
// to hyphens, markdown emphasis and punctuation dropped.
func slugify(heading string) string {
	s := strings.TrimSpace(strings.ToLower(heading))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r > 127:
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}
