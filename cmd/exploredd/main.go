// Command exploredd serves the model-checking engines over HTTP/JSON: a
// long-running daemon that accepts exploration and sampling jobs against the
// spec registry, streams their progress, caches verdicts content-addressed,
// and keeps warm sched runtimes across jobs.
//
// Usage:
//
//	exploredd [-addr 127.0.0.1:8722] [-queue 64] [-runners 2]
//	          [-rate 0] [-burst 8] [-idle 8]
//
// The daemon prints its listen address on stdout once bound (with -addr
// :0 the kernel picks the port, so scripts scrape the printed address) and
// shuts down cleanly on SIGINT/SIGTERM.
//
// API (see docs/SERVICE.md for the full reference and a walkthrough):
//
//	GET  /specs            registered specs with typed domains + capabilities
//	POST /jobs             submit {spec, params, engine, seed}; 202 + job id
//	GET  /jobs             list jobs in submission order
//	GET  /jobs/{id}        job status, progress counters, terminal result
//	GET  /jobs/{id}/events NDJSON stream: status, progress ticks, result
//	POST /jobs/{id}/cancel cancel a queued or running job
//	GET  /stats            queue depth, cache and session-pool counters
//	GET  /healthz          liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpcn/internal/service"

	// Register the built-in scenarios.
	_ "mpcn/internal/explore/sessions"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("exploredd", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "127.0.0.1:8722", "listen address (use :0 for an ephemeral port)")
	queueCap := fs.Int("queue", 64, "job queue capacity (submissions beyond it get 503)")
	runners := fs.Int("runners", 2, "concurrent job runners (each job fans out its own engine workers)")
	rate := fs.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := fs.Int("burst", 8, "per-client submission burst")
	idle := fs.Int("idle", 8, "warm sched sessions kept per (procs, protocol) key")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(errw, "exploredd: %v\n", err)
		return 1
	}

	srv := service.NewServer(service.ServerConfig{
		QueueCap:        *queueCap,
		Runners:         *runners,
		RatePerSec:      *rate,
		RateBurst:       *burst,
		MaxIdleSessions: *idle,
	})
	defer srv.Close()

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(out, "exploredd listening on http://%s\n", ln.Addr())
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(errw, "exploredd: %v\n", err)
		return 1
	}
	return 0
}
