package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"mpcn/internal/explore/spec"
	"mpcn/internal/service"
)

// TestServiceSmokeDaemon: the real daemon end to end — bind an ephemeral
// port, scrape the printed address, drive an exhaustive and a seeded
// sampling job to their verdicts over the wire, resubmit for a cache hit,
// then shut down on SIGINT.
func TestServiceSmokeDaemon(t *testing.T) {
	pr, pw := io.Pipe()
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0"}, pw, os.Stderr)
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("daemon banner: %v", err)
	}
	at := strings.Index(line, "http://")
	if at < 0 {
		t.Fatalf("banner %q names no address", line)
	}
	base := strings.TrimSpace(line[at:])

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	post := func(body string) service.JobStatus {
		t.Helper()
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d: %s", resp.StatusCode, buf.String())
		}
		var st service.JobStatus
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	poll := func(id string) service.JobStatus {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			var st service.JobStatus
			getJSON("/jobs/"+id, &st)
			if st.Result != nil {
				return st
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("job %s never finished", id)
		return service.JobStatus{}
	}

	var infos []spec.Info
	getJSON("/specs", &infos)
	if len(infos) != len(spec.All()) {
		t.Fatalf("/specs served %d specs, registry holds %d", len(infos), len(spec.All()))
	}

	// An exhaustive commit-adopt job proves its whole tree.
	ca := poll(post(`{"spec": "commitadopt", "params": {"crashes": "1"}, "engine": {"workers": 2}}`).ID)
	if ca.Result.Verdict != service.VerdictExhausted || !ca.Result.Explore.Exhausted {
		t.Fatalf("commitadopt verdict: %+v", ca.Result)
	}

	// A seeded BG sampling job resolves the spec's declared budgets.
	bgBody := `{"spec": "bg", "engine": {"mode": "sample", "strategy": "pct", "workers": 2}, "seed": 7}`
	bg := poll(post(bgBody).ID)
	if bg.Result.Verdict != service.VerdictSampled || bg.Cached {
		t.Fatalf("bg verdict: cached=%v %+v", bg.Cached, bg.Result)
	}
	if e := bg.Result.Engine; e.Samples != 1500 || e.Depth != 8 || e.Strategy != "pct" {
		t.Fatalf("bg resolved engine: %+v", e)
	}

	// The identical resubmission is answered from the cache, record verbatim.
	re := poll(post(bgBody).ID)
	if !re.Cached {
		t.Fatal("identical resubmission re-ran the engine")
	}
	a, _ := json.Marshal(re.Result)
	b, _ := json.Marshal(bg.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached record diverges:\n%s\n%s", a, b)
	}
	var stats service.StatsRecord
	getJSON("/stats", &stats)
	if stats.Cache.Hits < 1 {
		t.Fatalf("cache counters: %+v", stats.Cache)
	}

	// SIGINT drains the daemon; run returns cleanly.
	syscall.Kill(syscall.Getpid(), syscall.SIGINT)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit code %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down on SIGINT")
	}
}
