// Command benchexplore records the exhaustive-exploration throughput
// trajectory, driven entirely by the spec registry: every registered
// scenario contributes a crash-free and a crashes=1 sweep at its declared
// defaults, each run under up to five engines — the PR-1 style sequential
// respawning explorer, the sequential session-reuse explorer, the parallel
// session-backed worker pool, and the sequential + parallel engines with
// state-fingerprint deduplication (dedup engines only for specs whose
// SupportsDedup flag is set). Results land as JSON (BENCH_explore.json via
// `make bench-json`).
//
// Scenarios the run budget cannot exhaust (the BG simulation) are skipped
// with a note: a throughput number is only meaningful for a completed state
// space.
//
// Every registered spec additionally contributes a schedule-sampling series
// (engine "sample-pct"): a seeded PCT run at the spec's declared sampling
// budget recording samples/sec and the distinct-state coverage curve. The
// sampling series is the one series present for EVERY spec — including the
// exhaustion-skipped BG simulation, whose sampling cell is its only
// recorded trajectory — and the run fails if any registered spec is missing
// one (the sampling presence gate).
//
// Every tree-walking cell asserts the engines visited identical state spaces
// before reporting, so a number in the file is also a passed determinism
// check. The dedup cells assert the exhaustion verdict is unchanged and that
// the visited-run count never exceeds the tree walk's; the run as a whole
// asserts at least one sweep reaches a >= 2x runs-explored reduction (the
// dedup regression gate).
//
// Specs declaring the symmetry capability additionally contribute a symmetry
// series (engine "sequential-session-symmetry"): the sequential dedup walk
// with orbit-canonical fingerprints, recorded with its runs-explored
// collapse vs dedup alone (OrbitCollapseX). The symmetry gate requires every
// symmetry-declaring spec to carry the series and the tracked commit-adopt
// n=3 cell to show a strict (> 1x) collapse. -symmetry-only runs just this
// series and gate (the CI symmetry-conformance mode); -o "" measures and
// gates without writing the file.
//
// The file additionally carries the per-commit throughput trajectory
// ("trend"): an append-only series of tracked-cell measurements, one point
// per recorded commit. The tracked cell is the three-process crash-free
// commit-adopt exhaustion under the sequential session engine — the
// throughput-campaign workload (deep enough to amortize setup, converging
// enough to exercise the batched-grant fast path). Every full run and every
// -trend-only run appends a point (stamped with -commit) and gates the fresh
// runs/sec against the last recorded point within -trend-tolerance: the
// throughput regression gate, wired into CI next to the dedup-reduction and
// orbit-collapse gates. -trend-dry gates against the checked-in trajectory
// without rewriting the file (the CI mode). -print-trend prints the recorded
// series and exits (`make bench-trend`).
//
// -cpuprofile/-memprofile write pprof profiles of the measurement run — the
// profile-gated optimization workflow (`make profile`).
//
// Usage:
//
//	benchexplore [-o BENCH_explore.json] [-workers N] [-reps 3] [-probe 20000] [-samples 4000] [-symmetry-only]
//	benchexplore -trend-only [-trend-dry] [-commit abc1234] [-trend-tolerance 0.25]
//	benchexplore -print-trend
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mpcn/internal/explore"
	"mpcn/internal/explore/sample"
	"mpcn/internal/explore/spec"

	// Register the built-in scenarios.
	_ "mpcn/internal/explore/sessions"
)

// sweep is one benchmarked workload cell: a registered spec at a resolved
// parameter assignment.
type sweep struct {
	name string
	spec spec.Spec
	p    spec.Params
}

// Record is one engine measurement of one sweep, as serialized.
type Record struct {
	Sweep  string `json:"sweep"`
	Spec   string `json:"spec"`
	Params string `json:"params"`
	Engine string `json:"engine"`
	Runs   int    `json:"runs"`
	Pruned int    `json:"pruned"`

	ElapsedSec float64 `json:"elapsed_sec"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// Dedup-engine extras: distinct states visited, visited-state hits, and
	// the runs-explored reduction vs the same engine without dedup.
	DedupStates int64   `json:"dedup_states,omitempty"`
	DedupHits   int64   `json:"dedup_hits,omitempty"`
	ReductionX  float64 `json:"reduction_x,omitempty"`
	// Symmetry-engine extra (engine "sequential-session-symmetry"): the
	// runs-explored collapse vs the same engine with dedup alone — the
	// additional reduction bought by orbit-canonical fingerprints.
	OrbitCollapseX float64 `json:"orbit_collapse_x,omitempty"`
	// Sampling-engine extras (engine "sample-pct"): sampled runs, sampling
	// throughput, the distinct-state estimate and its growth curve.
	Samples        int                    `json:"samples,omitempty"`
	SamplesPerSec  float64                `json:"samples_per_sec,omitempty"`
	DistinctStates int64                  `json:"distinct_states,omitempty"`
	CoverageSeries []sample.CoveragePoint `json:"coverage_series,omitempty"`
}

// Report is the file layout of BENCH_explore.json.
type Report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	NumCPU        int      `json:"num_cpu"`
	Workers       int      `json:"workers"`
	Reps          int      `json:"reps"`
	Records       []Record `json:"records"`
	// Trend is the append-only per-commit throughput trajectory of the
	// tracked cells; every run appends one point and gates against the last.
	Trend []TrendPoint `json:"trend,omitempty"`
}

// TrendCell is one tracked-cell measurement inside a trend point.
type TrendCell struct {
	Runs       int     `json:"runs"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// TrendPoint is one commit's entry in the throughput trajectory. Cells is
// keyed "spec|params|engine".
type TrendPoint struct {
	Commit    string               `json:"commit"`
	Unix      int64                `json:"unix"`
	GoVersion string               `json:"go_version"`
	Cells     map[string]TrendCell `json:"cells"`
}

// benchOptions carries the flag set through the run.
type benchOptions struct {
	out        string
	workers    int
	reps       int
	probe      int
	samples    int
	symOnly    bool
	trendOnly  bool
	trendDry   bool
	printTrend bool
	commit     string
	trendTol   float64
	cpuprofile string
	memprofile string
}

func main() {
	var o benchOptions
	flag.StringVar(&o.out, "o", "BENCH_explore.json", "output file (empty = measure and gate without writing)")
	flag.IntVar(&o.workers, "workers", 0, "parallel worker-pool size (<= 0 selects the default)")
	flag.IntVar(&o.reps, "reps", 3, "repetitions per cell; the best rep is reported")
	flag.IntVar(&o.probe, "probe", 20000, "exhaustibility probe: skip sweeps that exceed this many runs")
	flag.IntVar(&o.samples, "samples", 4000, "sampling-series budget per spec (specs may declare smaller)")
	flag.BoolVar(&o.symOnly, "symmetry-only", false, "run only the symmetry series and its gate (the CI symmetry-conformance mode)")
	flag.BoolVar(&o.trendOnly, "trend-only", false, "measure only the tracked trend cells, gate against the last recorded point, and append (the CI throughput-gate mode)")
	flag.BoolVar(&o.trendDry, "trend-dry", false, "with -trend-only: gate against the recorded trend but leave the file unwritten (CI reads the checked-in trajectory without dirtying it)")
	flag.BoolVar(&o.printTrend, "print-trend", false, "print the recorded trend series and exit without measuring")
	flag.StringVar(&o.commit, "commit", "", "commit hash recorded in the appended trend point")
	flag.Float64Var(&o.trendTol, "trend-tolerance", 0.25, "allowed fractional runs/sec drop vs the last recorded trend point before the gate fails")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the measurement run to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile (after a final GC) to this file")
	flag.Parse()
	if err := runMain(o); err != nil {
		fmt.Fprintf(os.Stderr, "benchexplore: %v\n", err)
		os.Exit(1)
	}
}

func runMain(o benchOptions) error {
	if o.printTrend {
		return printTrendSeries(o.out)
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if o.memprofile != "" {
		defer func() {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchexplore: %v\n", err)
				return
			}
			runtime.GC() // retained allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchexplore: %v\n", err)
			}
			f.Close()
		}()
	}
	return run(o)
}

// sweeps derives the benchmark cells from the registry: per spec, the
// declared defaults without crashes and with a single-crash budget — plus
// one weak-memory cell (the regular-register writers at n=2, non-violating
// without readers), so the file tracks a weak backend's step-inflated tree
// next to the atomic default.
func sweeps() ([]sweep, error) {
	var out []sweep
	for _, s := range spec.All() {
		for _, crashes := range []int{0, 1} {
			p, err := spec.Resolve(s, spec.Params{spec.ParamCrashes: crashes})
			if err != nil {
				return nil, fmt.Errorf("spec %q: %w", s.Name(), err)
			}
			name := s.Name() + "/defaults"
			if crashes > 0 {
				name = fmt.Sprintf("%s/crashes=%d", s.Name(), crashes)
			}
			out = append(out, sweep{name: name, spec: s, p: p})
		}
	}
	weak, err := weakSweep()
	if err != nil {
		return nil, err
	}
	return append(out, weak), nil
}

// weakSweep builds the tracked weak-memory cell: registers at n=2 under the
// regular backend, crash-free. The writer-only harness has no property a
// weak backend can break, so the cell exhausts cleanly; at n=2 the
// three-step writes keep the tree inside the probe budget.
func weakSweep() (sweep, error) {
	s, err := spec.Lookup("registers")
	if err != nil {
		return sweep{}, fmt.Errorf("weak cell: %w", err)
	}
	backend := -1
	for _, d := range s.Params() {
		if d.Name == "backend" {
			if i, ok := d.ValueIndex("regular"); ok {
				backend = i
			}
		}
	}
	if backend < 0 {
		return sweep{}, fmt.Errorf("weak cell: registers declares no regular backend")
	}
	p, err := spec.Resolve(s, spec.Params{"n": 2, "backend": backend, spec.ParamCrashes: 0})
	if err != nil {
		return sweep{}, fmt.Errorf("weak cell: %w", err)
	}
	return sweep{name: "registers/backend=regular", spec: s, p: p}, nil
}

func run(o benchOptions) error {
	out, workers, reps, probe, samples := o.out, o.workers, o.reps, o.probe, o.samples
	if workers <= 0 {
		workers = explore.DefaultWorkers()
	}
	if reps < 1 {
		reps = 1
	}
	// The trend series is append-only: carry the recorded trajectory forward
	// from the existing file (absent or unreadable = empty history).
	prior, priorErr := readReport(out)
	report := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Reps:          reps,
		Trend:         prior.Trend,
	}
	if o.trendOnly {
		// CI throughput-gate mode: measure only the tracked cells, gate, and
		// append — the rest of the file (records and metadata) is preserved.
		// -trend-dry gates without writing (the measurement still ran and the
		// gate still failed the process on a regression).
		trend, err := appendTrend(prior.Trend, o, reps)
		if err != nil {
			return err
		}
		if o.trendDry {
			return nil
		}
		if priorErr != nil {
			report.Trend = trend
			return write(out, report)
		}
		prior.Trend = trend
		return write(out, prior)
	}
	if o.symOnly {
		symmetric, err := symmetrySeries(reps)
		if err != nil {
			return err
		}
		if err := symmetryGate(symmetric); err != nil {
			return err
		}
		report.Records = symmetric
		return write(out, report)
	}
	cells, err := sweeps()
	if err != nil {
		return err
	}
	bestReduction := 0.0
	for _, sw := range cells {
		// Exhaustibility probe: a throughput number is only meaningful for a
		// completed state space.
		cfg, err := spec.Config(sw.spec, sw.p, explore.Config{MaxRuns: probe})
		if err != nil {
			return fmt.Errorf("%s: %w", sw.name, err)
		}
		if st, err := explore.ExploreSession(sw.spec.New(sw.p), cfg); err != nil {
			return fmt.Errorf("%s (probe): %w", sw.name, err)
		} else if !st.Exhausted {
			fmt.Printf("%-28s skipped: exceeds the %d-run probe budget\n", sw.name, probe)
			continue
		}
		engines := []string{"sequential-respawn", "sequential-session", "parallel-session"}
		if sw.spec.SupportsDedup() {
			engines = append(engines, "sequential-session-dedup", "parallel-session-dedup")
		}
		var baseline explore.Stats
		for _, engine := range engines {
			best, err := measure(sw, engine, workers, reps)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sw.name, engine, err)
			}
			dedup := strings.HasSuffix(engine, "-dedup")
			if engine == "sequential-respawn" {
				baseline = best
			} else if dedup {
				// Dedup cuts converged subtrees: the verdict must match the
				// tree walk, the visited-run count must not exceed it.
				if best.Runs > baseline.Runs {
					return fmt.Errorf("%s/%s: dedup explored MORE runs than the tree walk: %d vs %d",
						sw.name, engine, best.Runs, baseline.Runs)
				}
			} else if best.Runs != baseline.Runs || best.Pruned != baseline.Pruned {
				return fmt.Errorf("%s/%s: state space diverged from the respawn baseline: %d/%d vs %d/%d runs/pruned",
					sw.name, engine, best.Runs, best.Pruned, baseline.Runs, baseline.Pruned)
			}
			rec := Record{
				Sweep:      sw.name,
				Spec:       sw.spec.Name(),
				Params:     sw.p.String(),
				Engine:     engine,
				Runs:       best.Runs,
				Pruned:     best.Pruned,
				ElapsedSec: best.Elapsed.Seconds(),
				RunsPerSec: best.RunsPerSec(),
			}
			if dedup {
				rec.DedupStates = best.Dedup.States
				rec.DedupHits = best.Dedup.Hits
				rec.ReductionX = float64(baseline.Runs) / float64(best.Runs)
				if rec.ReductionX > bestReduction {
					bestReduction = rec.ReductionX
				}
				fmt.Printf("%-28s %-26s %8d runs %10.0f runs/sec %8.1fx fewer runs\n",
					sw.name, engine, rec.Runs, rec.RunsPerSec, rec.ReductionX)
			} else {
				fmt.Printf("%-28s %-26s %8d runs %10.0f runs/sec\n",
					sw.name, engine, rec.Runs, rec.RunsPerSec)
			}
			report.Records = append(report.Records, rec)
		}
	}
	if bestReduction < 2 {
		return fmt.Errorf("dedup regression: best runs-explored reduction %.2fx < 2x", bestReduction)
	}
	symmetric, err := symmetrySeries(reps)
	if err != nil {
		return err
	}
	report.Records = append(report.Records, symmetric...)
	if err := symmetryGate(symmetric); err != nil {
		return err
	}
	sampled, err := sampleSeries(workers, samples)
	if err != nil {
		return err
	}
	report.Records = append(report.Records, sampled...)
	if err := sampledSpecsPresent(report.Records); err != nil {
		return err
	}
	trend, err := appendTrend(report.Trend, o, reps)
	if err != nil {
		return err
	}
	report.Trend = trend
	return write(out, report)
}

// readReport parses an existing report file (the append-mode input).
func readReport(path string) (Report, error) {
	var r Report
	if path == "" {
		return r, os.ErrNotExist
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, err
	}
	return r, nil
}

// trackedCells returns the trend-tracked sweeps: the throughput-campaign
// workloads whose runs/sec series gates regressions per commit. Currently the
// single tracked cell is the three-process crash-free commit-adopt exhaustion
// (756k runs at depth 15: deep enough to amortize per-run setup, converging
// enough to exercise every batching fast path).
func trackedCells() ([]sweep, error) {
	s, err := spec.Lookup("commitadopt")
	if err != nil {
		return nil, fmt.Errorf("trend: %w", err)
	}
	p, err := spec.Resolve(s, spec.Params{"n": 3, spec.ParamCrashes: 0})
	if err != nil {
		return nil, fmt.Errorf("trend: %w", err)
	}
	return []sweep{{name: "commitadopt/n=3", spec: s, p: p}}, nil
}

// trendKey names one tracked cell in a trend point.
func trendKey(sw sweep, engine string) string {
	return sw.spec.Name() + "|" + sw.p.String() + "|" + engine
}

// appendTrend measures the tracked cells, gates the fresh throughput against
// the last recorded point, and returns the series with the new point
// appended.
func appendTrend(trend []TrendPoint, o benchOptions, reps int) ([]TrendPoint, error) {
	cells, err := trackedCells()
	if err != nil {
		return nil, err
	}
	point := TrendPoint{
		Commit:    o.commit,
		Unix:      time.Now().Unix(),
		GoVersion: runtime.Version(),
		Cells:     make(map[string]TrendCell, len(cells)),
	}
	if point.Commit == "" {
		point.Commit = "unrecorded"
	}
	const engine = "sequential-session"
	for _, sw := range cells {
		best, err := measure(sw, engine, 0, reps)
		if err != nil {
			return nil, fmt.Errorf("trend %s/%s: %w", sw.name, engine, err)
		}
		key := trendKey(sw, engine)
		point.Cells[key] = TrendCell{Runs: best.Runs, RunsPerSec: best.RunsPerSec()}
		fmt.Printf("%-28s %-26s %8d runs %10.0f runs/sec (trend)\n",
			sw.name, engine, best.Runs, best.RunsPerSec())
	}
	if err := trendGate(trend, point, o.trendTol); err != nil {
		return nil, err
	}
	return append(trend, point), nil
}

// trendGate compares the fresh point against the last recorded one: a
// tracked cell's runs/sec may not drop by more than the tolerance fraction.
// A changed visited-run count is reported but not gated — the state space
// legitimately moves when specs change; throughput is what regresses
// silently.
func trendGate(trend []TrendPoint, point TrendPoint, tol float64) error {
	if len(trend) == 0 {
		return nil
	}
	last := trend[len(trend)-1]
	for key, cur := range point.Cells {
		prev, ok := last.Cells[key]
		if !ok {
			continue
		}
		if prev.Runs != cur.Runs {
			fmt.Printf("trend note: %s visited %d runs, last recorded point (%s) visited %d\n",
				key, cur.Runs, last.Commit, prev.Runs)
		}
		floor := prev.RunsPerSec * (1 - tol)
		if cur.RunsPerSec < floor {
			return fmt.Errorf("throughput regression: %s at %.0f runs/sec is below %.0f (last recorded %.0f at %s, tolerance %.0f%%)",
				key, cur.RunsPerSec, floor, prev.RunsPerSec, last.Commit, tol*100)
		}
		fmt.Printf("trend gate: %s %.0f -> %.0f runs/sec (%.2fx vs %s)\n",
			key, prev.RunsPerSec, cur.RunsPerSec, cur.RunsPerSec/prev.RunsPerSec, last.Commit)
	}
	return nil
}

// printTrendSeries renders the recorded trajectory (`make bench-trend`).
func printTrendSeries(path string) error {
	r, err := readReport(path)
	if err != nil {
		return fmt.Errorf("print-trend: %w", err)
	}
	if len(r.Trend) == 0 {
		fmt.Println("no trend points recorded")
		return nil
	}
	keys := make(map[string]bool)
	for _, pt := range r.Trend {
		for k := range pt.Cells {
			keys[k] = true
		}
	}
	for k := range keys {
		fmt.Printf("%s:\n", k)
		var first float64
		for _, pt := range r.Trend {
			c, ok := pt.Cells[k]
			if !ok {
				continue
			}
			if first == 0 {
				first = c.RunsPerSec
			}
			fmt.Printf("  %-12s %s  %8d runs %10.0f runs/sec %6.2fx\n",
				pt.Commit, time.Unix(pt.Unix, 0).UTC().Format("2006-01-02"),
				c.Runs, c.RunsPerSec, c.RunsPerSec/first)
		}
	}
	return nil
}

// write serializes the report; an empty path means "measure and gate only".
func write(out string, report Report) error {
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// symmetrySweeps derives the symmetry-series cells: per symmetry-declaring
// spec the declared defaults at crash budgets 0 and 1, plus the
// three-process crash-free commit-adopt cell the orbit-collapse gate tracks
// (at the two-process defaults the orbit structure is too small to measure).
func symmetrySweeps() ([]sweep, error) {
	var out []sweep
	for _, s := range spec.All() {
		if !s.SupportsSymmetry() {
			continue
		}
		grids := []spec.Params{
			{spec.ParamCrashes: 0},
			{spec.ParamCrashes: 1},
		}
		if s.Name() == "commitadopt" {
			grids = append(grids, spec.Params{"n": 3, spec.ParamCrashes: 0})
		}
		for _, g := range grids {
			p, err := spec.Resolve(s, g)
			if err != nil {
				return nil, fmt.Errorf("spec %q: %w", s.Name(), err)
			}
			name := fmt.Sprintf("%s/%v", s.Name(), g)
			out = append(out, sweep{name: name, spec: s, p: p})
		}
	}
	return out, nil
}

// symmetrySeries measures the symmetry engine against its dedup baseline:
// per cell, the sequential dedup walk and the sequential dedup+symmetry walk
// (both exhausted), asserting the symmetric walk never explores more runs,
// and recording the runs-explored collapse as OrbitCollapseX.
func symmetrySeries(reps int) ([]Record, error) {
	cells, err := symmetrySweeps()
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, sw := range cells {
		baseline, err := measure(sw, "sequential-session-dedup", 0, reps)
		if err != nil {
			return nil, fmt.Errorf("%s/sequential-session-dedup: %w", sw.name, err)
		}
		best, err := measure(sw, "sequential-session-symmetry", 0, reps)
		if err != nil {
			return nil, fmt.Errorf("%s/sequential-session-symmetry: %w", sw.name, err)
		}
		if best.Runs > baseline.Runs {
			return nil, fmt.Errorf("%s: symmetry explored MORE runs than dedup alone: %d vs %d",
				sw.name, best.Runs, baseline.Runs)
		}
		rec := Record{
			Sweep:          sw.name,
			Spec:           sw.spec.Name(),
			Params:         sw.p.String(),
			Engine:         "sequential-session-symmetry",
			Runs:           best.Runs,
			Pruned:         best.Pruned,
			ElapsedSec:     best.Elapsed.Seconds(),
			RunsPerSec:     best.RunsPerSec(),
			DedupStates:    best.Dedup.States,
			DedupHits:      best.Dedup.Hits,
			OrbitCollapseX: float64(baseline.Runs) / float64(best.Runs),
		}
		fmt.Printf("%-28s %-26s %8d runs %10.0f runs/sec %8.2fx orbit collapse\n",
			sw.name, rec.Engine, rec.Runs, rec.RunsPerSec, rec.OrbitCollapseX)
		out = append(out, rec)
	}
	return out, nil
}

// symmetryGate is the symmetry regression gate: every symmetry-declaring
// spec carries at least one symmetry record, and the tracked commit-adopt
// n=3 cell shows a strict orbit collapse (> 1x) — a ratio of exactly 1 means
// the canonicalization never merged a single orbit.
func symmetryGate(records []Record) error {
	have := make(map[string]bool)
	tracked := 0.0
	for _, r := range records {
		if r.Engine != "sequential-session-symmetry" {
			continue
		}
		have[r.Spec] = true
		if r.Spec == "commitadopt" && strings.Contains(r.Params, "n=3") && r.OrbitCollapseX > tracked {
			tracked = r.OrbitCollapseX
		}
	}
	for _, s := range spec.All() {
		if s.SupportsSymmetry() && !have[s.Name()] {
			return fmt.Errorf("symmetry gate: spec %q declares symmetry but has no symmetry series", s.Name())
		}
	}
	if tracked <= 1 {
		return fmt.Errorf("symmetry gate: commitadopt n=3 orbit collapse %.2fx is not > 1x", tracked)
	}
	return nil
}

// sampleSeries records one seeded PCT sampling cell per registered spec —
// including specs the exhaustibility probe skips (the BG simulation), for
// which this is the only recorded trajectory. The cell runs at the spec's
// declared sampling budget (capped by -samples) with a single-crash budget
// and the distinct-state coverage estimator on.
func sampleSeries(workers, samples int) ([]Record, error) {
	var out []Record
	for _, s := range spec.All() {
		// A single-crash budget, clamped to the spec's declared crashes
		// domain (Decls may tighten the auto-declared engine params).
		crashes := 1
		for _, d := range s.Params() {
			if d.Name == spec.ParamCrashes {
				if crashes > d.Max {
					crashes = d.Max
				}
				if crashes < d.Min {
					crashes = d.Min
				}
			}
		}
		p, err := spec.Resolve(s, spec.Params{spec.ParamCrashes: crashes})
		if err != nil {
			return nil, fmt.Errorf("%s (sampling): %w", s.Name(), err)
		}
		cfg := sample.Config{
			Samples:     samples,
			Seed:        1,
			MaxCrashes:  crashes,
			MaxSteps:    p[spec.ParamSteps],
			Depth:       s.Sampling().Depth,
			Workers:     workers,
			Coverage:    true,
			Checkpoints: 8,
		}
		if b := s.Sampling().Budget; b > 0 && b < cfg.Samples {
			cfg.Samples = b
		}
		if spec.Unbounded(s) && cfg.MaxSteps <= 0 {
			// Unbounded trees walk to the engine's step default on most
			// schedules; bound the per-run length so the series stays cheap.
			cfg.MaxSteps = 800
		}
		st, err := sample.RunParallel(spec.Factory(s, p), sample.StrategyPCT, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/sample-pct: %w", s.Name(), err)
		}
		rec := Record{
			Sweep:          s.Name() + "/sample",
			Spec:           s.Name(),
			Params:         p.String(),
			Engine:         "sample-pct",
			ElapsedSec:     st.Elapsed.Seconds(),
			Samples:        st.Samples,
			SamplesPerSec:  st.SamplesPerSec(),
			DistinctStates: st.Distinct,
			CoverageSeries: st.Series,
		}
		fmt.Printf("%-28s %-26s %8d samples %8.0f samples/sec %8d distinct states\n",
			rec.Sweep, rec.Engine, rec.Samples, rec.SamplesPerSec, rec.DistinctStates)
		out = append(out, rec)
	}
	return out, nil
}

// sampledSpecsPresent is the sampling presence gate: every registered spec
// must carry a sampling series with a non-empty coverage curve.
func sampledSpecsPresent(records []Record) error {
	have := make(map[string]bool)
	for _, r := range records {
		if strings.HasPrefix(r.Engine, "sample-") && r.Samples > 0 && len(r.CoverageSeries) > 0 {
			have[r.Spec] = true
		}
	}
	for _, s := range spec.All() {
		if !have[s.Name()] {
			return fmt.Errorf("sampling gate: spec %q has no sampling series", s.Name())
		}
	}
	return nil
}

// measure runs one (sweep, engine) cell reps times and returns the fastest
// exhausted run.
func measure(sw sweep, engine string, workers, reps int) (explore.Stats, error) {
	var best explore.Stats
	for r := 0; r < reps; r++ {
		cfg, err := spec.Config(sw.spec, sw.p, explore.Config{})
		if err != nil {
			return best, err
		}
		var stats explore.Stats
		switch engine {
		case "sequential-respawn":
			cfg.Respawn = true
			stats, err = explore.ExploreSession(sw.spec.New(sw.p), cfg)
		case "sequential-session":
			stats, err = explore.ExploreSession(sw.spec.New(sw.p), cfg)
		case "parallel-session":
			cfg.Workers = workers
			stats, err = explore.ExploreParallel(spec.Factory(sw.spec, sw.p), cfg)
		case "sequential-session-dedup":
			cfg.Dedup = true
			stats, err = explore.ExploreSession(sw.spec.New(sw.p), cfg)
		case "sequential-session-symmetry":
			cfg.Dedup = true
			cfg.Symmetry = true
			stats, err = explore.ExploreSession(sw.spec.New(sw.p), cfg)
		case "parallel-session-dedup":
			cfg.Dedup = true
			cfg.Workers = workers
			stats, err = explore.ExploreParallel(spec.Factory(sw.spec, sw.p), cfg)
		default:
			return best, fmt.Errorf("unknown engine %q", engine)
		}
		if err != nil {
			return best, err
		}
		if !stats.Exhausted {
			return best, fmt.Errorf("sweep did not exhaust")
		}
		if r == 0 || stats.Elapsed < best.Elapsed {
			best = stats
		}
	}
	return best, nil
}
