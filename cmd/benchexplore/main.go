// Command benchexplore records the exhaustive-exploration throughput
// trajectory: it runs the commit-adopt and x-safe exhaustive sweeps under
// five engines — the PR-1 style sequential respawning explorer, the
// sequential session-reuse explorer, the parallel session-backed worker
// pool, and the sequential + parallel engines with state-fingerprint
// deduplication — and writes the runs/sec results as JSON
// (BENCH_explore.json via `make bench-json`).
//
// Every tree-walking cell asserts the engines visited identical state spaces
// before reporting, so a number in the file is also a passed determinism
// check. The dedup cells assert the exhaustion verdict is unchanged and that
// the visited-run count never exceeds the tree walk's; the run as a whole
// asserts at least one sweep reaches a >= 2x runs-explored reduction (the
// dedup regression gate).
//
// Usage:
//
//	benchexplore [-o BENCH_explore.json] [-workers N] [-reps 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mpcn/internal/explore"
	"mpcn/internal/explore/sessions"
)

// sweep is one benchmarked workload cell.
type sweep struct {
	name       string
	newSession func() explore.Session
	cfg        explore.Config
}

// Record is one engine measurement of one sweep, as serialized.
type Record struct {
	Sweep      string  `json:"sweep"`
	Engine     string  `json:"engine"`
	Runs       int     `json:"runs"`
	Pruned     int     `json:"pruned"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// Dedup-engine extras: distinct states visited, visited-state hits, and
	// the runs-explored reduction vs the same engine without dedup.
	DedupStates int64   `json:"dedup_states,omitempty"`
	DedupHits   int64   `json:"dedup_hits,omitempty"`
	ReductionX  float64 `json:"reduction_x,omitempty"`
}

// Report is the file layout of BENCH_explore.json.
type Report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	NumCPU        int      `json:"num_cpu"`
	Workers       int      `json:"workers"`
	Reps          int      `json:"reps"`
	Records       []Record `json:"records"`
}

func main() {
	out := flag.String("o", "BENCH_explore.json", "output file")
	workers := flag.Int("workers", 0, "parallel worker-pool size (<= 0 selects the default)")
	reps := flag.Int("reps", 3, "repetitions per cell; the best rep is reported")
	flag.Parse()
	if err := run(*out, *workers, *reps); err != nil {
		fmt.Fprintf(os.Stderr, "benchexplore: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, workers, reps int) error {
	if workers <= 0 {
		workers = explore.DefaultWorkers()
	}
	if reps < 1 {
		reps = 1
	}
	sweeps := []sweep{
		{"commitadopt/n=2", sessions.CommitAdopt(2), explore.Config{MaxSteps: 64}},
		{"commitadopt/n=2/crashes=1", sessions.CommitAdopt(2), explore.Config{MaxCrashes: 1, MaxSteps: 64}},
		{"xsafe/n=2/x=1/crashes=1", sessions.XSafe(2, 1, 2), explore.Config{MaxCrashes: 1, MaxSteps: 256}},
		{"xsafe/n=2/x=2/crashes=1", sessions.XSafe(2, 2, 2), explore.Config{MaxCrashes: 1, MaxSteps: 256}},
	}
	report := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Reps:          reps,
	}
	bestReduction := 0.0
	for _, sw := range sweeps {
		var baseline explore.Stats
		for _, engine := range []string{
			"sequential-respawn", "sequential-session", "parallel-session",
			"sequential-session-dedup", "parallel-session-dedup",
		} {
			best, err := measure(sw, engine, workers, reps)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sw.name, engine, err)
			}
			dedup := strings.HasSuffix(engine, "-dedup")
			if engine == "sequential-respawn" {
				baseline = best
			} else if dedup {
				// Dedup cuts converged subtrees: the verdict must match the
				// tree walk, the visited-run count must not exceed it.
				if best.Runs > baseline.Runs {
					return fmt.Errorf("%s/%s: dedup explored MORE runs than the tree walk: %d vs %d",
						sw.name, engine, best.Runs, baseline.Runs)
				}
			} else if best.Runs != baseline.Runs || best.Pruned != baseline.Pruned {
				return fmt.Errorf("%s/%s: state space diverged from the respawn baseline: %d/%d vs %d/%d runs/pruned",
					sw.name, engine, best.Runs, best.Pruned, baseline.Runs, baseline.Pruned)
			}
			rec := Record{
				Sweep:      sw.name,
				Engine:     engine,
				Runs:       best.Runs,
				Pruned:     best.Pruned,
				ElapsedSec: best.Elapsed.Seconds(),
				RunsPerSec: best.RunsPerSec(),
			}
			if dedup {
				rec.DedupStates = best.Dedup.States
				rec.DedupHits = best.Dedup.Hits
				rec.ReductionX = float64(baseline.Runs) / float64(best.Runs)
				if rec.ReductionX > bestReduction {
					bestReduction = rec.ReductionX
				}
				fmt.Printf("%-28s %-26s %8d runs %10.0f runs/sec %8.1fx fewer runs\n",
					sw.name, engine, rec.Runs, rec.RunsPerSec, rec.ReductionX)
			} else {
				fmt.Printf("%-28s %-26s %8d runs %10.0f runs/sec\n",
					sw.name, engine, rec.Runs, rec.RunsPerSec)
			}
			report.Records = append(report.Records, rec)
		}
	}
	if bestReduction < 2 {
		return fmt.Errorf("dedup regression: best runs-explored reduction %.2fx < 2x", bestReduction)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measure runs one (sweep, engine) cell reps times and returns the fastest
// exhausted run.
func measure(sw sweep, engine string, workers, reps int) (explore.Stats, error) {
	var best explore.Stats
	for r := 0; r < reps; r++ {
		cfg := sw.cfg
		var stats explore.Stats
		var err error
		switch engine {
		case "sequential-respawn":
			cfg.Respawn = true
			stats, err = explore.ExploreSession(sw.newSession(), cfg)
		case "sequential-session":
			stats, err = explore.ExploreSession(sw.newSession(), cfg)
		case "parallel-session":
			cfg.Workers = workers
			stats, err = explore.ExploreParallel(sw.newSession, cfg)
		case "sequential-session-dedup":
			cfg.Dedup = true
			stats, err = explore.ExploreSession(sw.newSession(), cfg)
		case "parallel-session-dedup":
			cfg.Dedup = true
			cfg.Workers = workers
			stats, err = explore.ExploreParallel(sw.newSession, cfg)
		default:
			return best, fmt.Errorf("unknown engine %q", engine)
		}
		if err != nil {
			return best, err
		}
		if !stats.Exhausted {
			return best, fmt.Errorf("sweep did not exhaust")
		}
		if r == 0 || stats.Elapsed < best.Elapsed {
			best = stats
		}
	}
	return best, nil
}
