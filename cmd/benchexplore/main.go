// Command benchexplore records the exhaustive-exploration throughput
// trajectory: it runs the commit-adopt and x-safe exhaustive sweeps under
// three engines — the PR-1 style sequential respawning explorer, the
// sequential session-reuse explorer, and the parallel session-backed worker
// pool — and writes the runs/sec results as JSON (BENCH_explore.json via
// `make bench-json`). Every cell asserts the engines visited identical state
// spaces before reporting, so a number in the file is also a passed
// determinism check.
//
// Usage:
//
//	benchexplore [-o BENCH_explore.json] [-workers N] [-reps 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mpcn/internal/explore"
	"mpcn/internal/explore/sessions"
)

// sweep is one benchmarked workload cell.
type sweep struct {
	name       string
	newSession func() explore.Session
	cfg        explore.Config
}

// Record is one engine measurement of one sweep, as serialized.
type Record struct {
	Sweep      string  `json:"sweep"`
	Engine     string  `json:"engine"`
	Runs       int     `json:"runs"`
	Pruned     int     `json:"pruned"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RunsPerSec float64 `json:"runs_per_sec"`
}

// Report is the file layout of BENCH_explore.json.
type Report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	NumCPU        int      `json:"num_cpu"`
	Workers       int      `json:"workers"`
	Reps          int      `json:"reps"`
	Records       []Record `json:"records"`
}

func main() {
	out := flag.String("o", "BENCH_explore.json", "output file")
	workers := flag.Int("workers", 0, "parallel worker-pool size (<= 0 selects the default)")
	reps := flag.Int("reps", 3, "repetitions per cell; the best rep is reported")
	flag.Parse()
	if err := run(*out, *workers, *reps); err != nil {
		fmt.Fprintf(os.Stderr, "benchexplore: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, workers, reps int) error {
	if workers <= 0 {
		workers = explore.DefaultWorkers()
	}
	if reps < 1 {
		reps = 1
	}
	sweeps := []sweep{
		{"commitadopt/n=2", sessions.CommitAdopt(2), explore.Config{MaxSteps: 64}},
		{"commitadopt/n=2/crashes=1", sessions.CommitAdopt(2), explore.Config{MaxCrashes: 1, MaxSteps: 64}},
		{"xsafe/n=2/x=1/crashes=1", sessions.XSafe(2, 1, 2), explore.Config{MaxCrashes: 1, MaxSteps: 256}},
		{"xsafe/n=2/x=2/crashes=1", sessions.XSafe(2, 2, 2), explore.Config{MaxCrashes: 1, MaxSteps: 256}},
	}
	report := Report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Reps:          reps,
	}
	for _, sw := range sweeps {
		var baseline explore.Stats
		for _, engine := range []string{"sequential-respawn", "sequential-session", "parallel-session"} {
			best, err := measure(sw, engine, workers, reps)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sw.name, engine, err)
			}
			if engine == "sequential-respawn" {
				baseline = best
			} else if best.Runs != baseline.Runs || best.Pruned != baseline.Pruned {
				return fmt.Errorf("%s/%s: state space diverged from the respawn baseline: %d/%d vs %d/%d runs/pruned",
					sw.name, engine, best.Runs, best.Pruned, baseline.Runs, baseline.Pruned)
			}
			rec := Record{
				Sweep:      sw.name,
				Engine:     engine,
				Runs:       best.Runs,
				Pruned:     best.Pruned,
				ElapsedSec: best.Elapsed.Seconds(),
				RunsPerSec: best.RunsPerSec(),
			}
			report.Records = append(report.Records, rec)
			fmt.Printf("%-28s %-20s %8d runs %10.0f runs/sec\n",
				sw.name, engine, rec.Runs, rec.RunsPerSec)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measure runs one (sweep, engine) cell reps times and returns the fastest
// exhausted run.
func measure(sw sweep, engine string, workers, reps int) (explore.Stats, error) {
	var best explore.Stats
	for r := 0; r < reps; r++ {
		cfg := sw.cfg
		var stats explore.Stats
		var err error
		switch engine {
		case "sequential-respawn":
			cfg.Respawn = true
			s := sw.newSession()
			stats, err = explore.Explore(s.Make, s.Check, cfg)
		case "sequential-session":
			s := sw.newSession()
			stats, err = explore.Explore(s.Make, s.Check, cfg)
		case "parallel-session":
			cfg.Workers = workers
			stats, err = explore.ExploreParallel(sw.newSession, cfg)
		default:
			return best, fmt.Errorf("unknown engine %q", engine)
		}
		if err != nil {
			return best, err
		}
		if !stats.Exhausted {
			return best, fmt.Errorf("sweep did not exhaust")
		}
		if r == 0 || stats.Elapsed < best.Elapsed {
			best = stats
		}
	}
	return best, nil
}
