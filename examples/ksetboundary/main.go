// ksetboundary sweeps the main theorem's solvability frontier: for each
// (t', x) it runs k-set agreement in ASM(n, t', x) via the Section 4
// simulation under t' adversarial crashes, for k one above and (where
// meaningful) one at the level ⌊t'/x⌋ — the first must terminate correctly,
// the second is rejected by the theorem's hypothesis.
//
// Run with: go run ./examples/ksetboundary
package main

import (
	"fmt"
	"os"

	"mpcn/internal/algorithms"
	"mpcn/internal/core"
	"mpcn/internal/model"
	"mpcn/internal/sched"
	"mpcn/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "ksetboundary: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 6
	inputs := tasks.DistinctInputs(n)
	fmt.Printf("k-set agreement solvability in ASM(%d, t', x)   (paper: solvable iff k > ⌊t'/x⌋)\n\n", n)
	fmt.Printf("%-4s %-4s %-7s %-14s %-14s\n", "t'", "x", "⌊t'/x⌋", "k=level+1", "k=level")
	for tPrime := 1; tPrime <= 4; tPrime++ {
		for x := 1; x <= 3; x++ {
			dst := model.ASM{N: n, T: tPrime, X: x}
			level := dst.Level()

			solvable := "-"
			k := level + 1
			src := model.ASM{N: n, T: k - 1, X: 1}
			adv := sched.NewPlan(sched.NewRandom(int64(100*tPrime + x)))
			for v := 0; v < tPrime; v++ {
				adv.CrashAfterProcSteps(sched.ProcID(v), 15*(v+1))
			}
			r, err := core.ReverseSim(algorithms.SnapshotKSet{T: k - 1}, inputs, src, dst,
				sched.Config{Adversary: adv})
			switch {
			case err != nil:
				solvable = "error: " + err.Error()
			case r.Sched.BudgetExhausted:
				solvable = "WEDGED"
			case core.ValidateColorless(tasks.KSet{K: k}, inputs, r) == nil:
				solvable = fmt.Sprintf("solved (%d dec)", r.Sched.NumDecided())
			default:
				solvable = "INVALID"
			}

			unsolvable := "(k=0: n/a)"
			if level >= 1 {
				_, err := core.ReverseSim(algorithms.SnapshotKSet{T: level - 1}, inputs,
					model.ASM{N: n, T: level - 1, X: 1}, dst, sched.Config{})
				if err != nil {
					unsolvable = "rejected"
				} else {
					unsolvable = "ACCEPTED?!"
				}
			}
			fmt.Printf("%-4d %-4d %-7d %-14s %-14s\n", tPrime, x, level, solvable, unsolvable)
		}
	}
	fmt.Println("\n\"rejected\" = the simulation's hypothesis t >= ⌊t'/x⌋ fails, matching the")
	fmt.Println("impossibility side of the theorem (k-set agreement is unsolvable for k <= ⌊t'/x⌋).")
	return nil
}
