// renaming demonstrates the colored-task simulation of §5.5 (Figure 8):
// wait-free (2n-1)-renaming for n = 7 processes, simulated by 5 simulators
// in ASM(5, 2, 2), with two simulators crashed mid-run. Each surviving
// simulator claims the new name of a distinct simulated process through a
// test&set object.
//
// Run with: go run ./examples/renaming
package main

import (
	"fmt"
	"os"

	"mpcn/internal/algorithms"
	"mpcn/internal/core"
	"mpcn/internal/model"
	"mpcn/internal/sched"
	"mpcn/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "renaming: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	src := model.ASM{N: 7, T: 3, X: 1} // renaming is wait-free, hence 3-resilient
	dst := model.ASM{N: 5, T: 2, X: 2}
	task := tasks.Renaming{M: 2*src.N - 1}
	inputs := tasks.DistinctInputs(src.N)

	fmt.Printf("colored simulation (§5.5): %s in %v, source %v\n", task.Name(), dst, src)
	fmt.Printf("conditions: x'=%d>1, ⌊t/x⌋=%d >= ⌊t'/x'⌋=%d, n=%d >= max(n', n'-t'+t)=%d\n\n",
		dst.X, src.Level(), dst.Level(), src.N, dst.N-dst.T+src.T)

	adv := sched.NewPlan(sched.NewRandom(17)).
		CrashAfterProcSteps(0, 30).
		CrashAfterProcSteps(1, 70)
	r, err := core.ColoredSim(algorithms.Renaming{}, inputs, src, dst,
		sched.Config{Adversary: adv})
	if err != nil {
		return err
	}

	for i, oc := range r.Sched.Outcomes {
		if oc.Decided {
			fmt.Printf("  simulator %d: claimed p%d's new name %v\n", i, r.ClaimedProc[i], oc.Value)
		} else {
			fmt.Printf("  simulator %d: %s\n", i, oc.Status)
		}
	}
	if err := core.ValidateColored(task, inputs, r); err != nil {
		return err
	}
	fmt.Printf("\n%s: VALID (distinct names within 1..%d despite %d simulator crashes)\n",
		task.Name(), task.M, r.Sched.Crashes)
	return nil
}
