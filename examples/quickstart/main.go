// Quickstart: the smallest tour of the library's public surface.
//
// It runs three miniature experiments:
//  1. an x-ported consensus object shared by three processes;
//  2. a safe_agreement object (Figure 1) and what a mid-propose crash does;
//  3. the model algebra: which k-set tasks ASM(10, 8, 3) can solve, and its
//     canonical form.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"mpcn/internal/agreement"
	"mpcn/internal/model"
	"mpcn/internal/object"
	"mpcn/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Three processes agree through one consensus-number-3 object.
	cons := object.NewXConsensus("xcons", 3, []sched.ProcID{0, 1, 2})
	bodies := make([]sched.Proc, 3)
	for i := range bodies {
		proposal := fmt.Sprintf("value-%d", i)
		bodies[i] = func(e *sched.Env) {
			e.Decide(cons.Propose(e, proposal))
		}
	}
	res, err := sched.Run(sched.Config{Seed: 42}, bodies)
	if err != nil {
		return err
	}
	fmt.Printf("x-consensus: %d processes decided %v (agreement: %v)\n",
		res.NumDecided(), res.Outcomes[0].Value, res.DistinctDecided() == 1)

	// 2. safe_agreement: fine without crashes, wedged by one ill-timed one.
	for _, crash := range []bool{false, true} {
		sa := agreement.NewSafeAgreement("sa", 3)
		bodies := make([]sched.Proc, 3)
		for i := range bodies {
			v := 100 + i
			bodies[i] = func(e *sched.Env) {
				sa.Propose(e, v)
				e.Decide(sa.Decide(e))
			}
		}
		cfg := sched.Config{Seed: 7, MaxSteps: 3000}
		if crash {
			// Crash process 0 between its level-1 and level-2 writes.
			cfg.Adversary = sched.NewPlan(sched.NewRoundRobin()).CrashOnLabel(0, "sa.SM.scan", 1)
		}
		res, err := sched.Run(cfg, bodies)
		if err != nil {
			return err
		}
		fmt.Printf("safe_agreement (mid-propose crash: %-5v): decided=%d wedged=%v\n",
			crash, res.NumDecided(), res.BudgetExhausted)
	}

	// 3. Model algebra: ASM(10, 8, 3) has level ⌊8/3⌋ = 2.
	m, err := model.New(10, 8, 3)
	if err != nil {
		return err
	}
	fmt.Printf("%v: level=%d canonical=%v consensus=%v 3-set=%v\n",
		m, m.Level(), m.Canonical(), m.SolvesConsensus(), m.SolvesKSet(3))
	return nil
}
