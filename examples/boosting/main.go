// boosting demonstrates the failure-detector context of §1.3: registers
// have consensus number 1 — in ASM(n, n-1, 1) consensus is impossible — yet
// the same memory enriched with the Ω oracle solves consensus wait-free.
// The example runs both sides: the register-only attempt wedges under a
// single ill-placed crash (the FLP/consensus-number boundary), the Ω-based
// Paxos-style algorithm decides with n-1 processes dead and with the
// elected leader crashed mid-round.
//
// Run with: go run ./examples/boosting
package main

import (
	"fmt"
	"os"

	"mpcn/internal/algorithms"
	"mpcn/internal/detector"
	"mpcn/internal/sched"
	"mpcn/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "boosting: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 5
	inputs := tasks.DistinctInputs(n)

	// Registers only: the 0-resilient consensus algorithm (snapshot k-set
	// with t=0) wedges as soon as one process is dead.
	adv := sched.NewCrashSet(sched.NewRoundRobin(), 0)
	res, err := algorithms.Direct(algorithms.SnapshotKSet{T: 0}, inputs, 1,
		sched.Config{Adversary: adv, MaxSteps: 4000})
	if err != nil {
		return err
	}
	fmt.Printf("registers only, 1 crash: decided=%d wedged=%v  (consensus number 1)\n",
		res.NumDecided(), res.BudgetExhausted)

	// Registers + Ω: wait-free despite n-1 initial deaths.
	cons := detector.NewOmegaConsensus("oc", n)
	bodies := make([]sched.Proc, n)
	for i := range bodies {
		v := 100 + i
		bodies[i] = func(e *sched.Env) { e.Decide(cons.Propose(e, v)) }
	}
	advAll := sched.NewCrashSet(sched.NewRandom(1), 0, 1, 2, 3)
	resOmega, err := sched.Run(sched.Config{Adversary: advAll}, bodies)
	if err != nil {
		return err
	}
	fmt.Printf("registers + Ω, %d crashes: survivor decided %v (wedged=%v)\n",
		n-1, resOmega.Outcomes[4].Value, resOmega.BudgetExhausted)

	// Registers + Ω with the leader killed mid-round: the next leader takes
	// over and agreement is preserved.
	cons2 := detector.NewOmegaConsensus("oc", n)
	bodies2 := make([]sched.Proc, n)
	for i := range bodies2 {
		v := 200 + i
		bodies2[i] = func(e *sched.Env) { e.Decide(cons2.Propose(e, v)) }
	}
	advLeader := sched.NewPlan(sched.NewRandom(7)).CrashOnLabel(0, "oc.mem[0].update", 2)
	res2, err := sched.Run(sched.Config{Adversary: advLeader}, bodies2)
	if err != nil {
		return err
	}
	fmt.Printf("registers + Ω, leader crashed mid-round: %d survivors agreed on %v\n",
		res2.NumDecided(), res2.DecidedValues()[0])

	// Ωx + x-consensus: the Guerraoui-Kuznetsov boost iterated to n. The
	// oracle window stabilizes to {1,2,3} whose minimum is dead — only the
	// surviving member can drive the per-round x-consensus funnel.
	const x = 3
	cons3 := detector.NewBoostedConsensus("bc", n, x)
	bodies3 := make([]sched.Proc, n)
	for i := range bodies3 {
		v := 300 + i
		bodies3[i] = func(e *sched.Env) { e.Decide(cons3.Propose(e, v)) }
	}
	advWin := sched.NewPlan(sched.NewRandom(5)).
		CrashAfterProcSteps(0, 8).
		CrashAfterProcSteps(1, 14).
		CrashAfterProcSteps(2, 20)
	res3, err := sched.Run(sched.Config{Adversary: advWin}, bodies3)
	if err != nil {
		return err
	}
	fmt.Printf("x-consensus (x=%d) + Ωx, dead-minimum window: %d survivors agreed on %v\n",
		x, res3.NumDecided(), res3.DecidedValues()[0])

	fmt.Println("\nΩ is the weakest detector for this boost (Chandra-Hadzilacos-Toueg);")
	fmt.Println("Guerraoui-Kuznetsov generalize it to Ωx boosting consensus number x to x+1 (§1.3) —")
	fmt.Println("iterating their boost (Ωx derives Ωy for y >= x) climbs to n, as run above.")
	return nil
}
