// Weakmemory: the memory model as a checked parameter.
//
// The same exhaustive explorer, the same harnesses, three register
// semantics (-set backend=atomic|regular|tso on the CLI). Two experiments:
//  1. a writer plus a double-reading process: read monotonicity is a
//     theorem under atomic and TSO registers and falsified under regular
//     ones — the explorer finds the new-then-old flicker witness, replays
//     it, and minimizes it to the decisions that matter;
//  2. the SB store-buffering litmus: both loads returning 0 is forbidden
//     under atomic AND regular registers (regular weakens concurrent
//     reads, not store→load order) and reachable under TSO.
//
// Run with: go run ./examples/weakmemory
package main

import (
	"errors"
	"fmt"
	"os"

	"mpcn/internal/explore"
	"mpcn/internal/explore/sessions"
	"mpcn/internal/explore/spec"
	"mpcn/internal/explore/spectest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "weakmemory: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Reader monotonicity: one writer (one write), one double-reader.
	fmt.Println("registers n=1 writes=1 readers=1 — double-read of cell 0 must be monotonic:")
	regs, err := spec.Lookup("registers")
	if err != nil {
		return err
	}
	var witness []string
	for _, backend := range []string{"atomic", "regular", "tso"} {
		p, err := spectest.BackendParams(regs, backend, spec.Params{"n": 1, "writes": 1, "readers": 1})
		if err != nil {
			return err
		}
		cfg, err := spec.Config(regs, p, explore.Config{Dedup: true})
		if err != nil {
			return err
		}
		st, xerr := explore.ExploreSession(regs.New(p), cfg)
		var pe *explore.PropertyError
		switch {
		case xerr == nil:
			fmt.Printf("  backend=%-8s holds on every schedule (%d runs)\n", backend, st.Runs)
		case errors.As(xerr, &pe):
			fmt.Printf("  backend=%-8s VIOLATED: %v\n", backend, pe.Err)
			witness = pe.Script
		default:
			return xerr
		}
	}

	// Minimize the regular witness to the ordering constraints the flicker
	// window needs; everything else completes with the default schedule.
	if witness == nil {
		return errors.New("expected a regular-backend witness")
	}
	p, err := spectest.BackendParams(regs, "regular", spec.Params{"n": 1, "writes": 1, "readers": 1})
	if err != nil {
		return err
	}
	min, err := spectest.MinimizeScript(regs.New(p), witness, 0,
		func(err error) bool { return errors.Is(err, sessions.ErrNonMonotonicRead) })
	if err != nil {
		return err
	}
	fmt.Printf("  witness minimized %d -> %d decisions:\n", len(witness), len(min))
	for _, line := range min {
		fmt.Printf("    %s\n", line)
	}

	// 2. The SB litmus: only TSO reorders the store past the load.
	fmt.Println("\nsb litmus — both loads reading 0 is the forbidden outcome:")
	sb, err := spec.Lookup("sb")
	if err != nil {
		return err
	}
	for _, backend := range []string{"atomic", "regular", "tso"} {
		p, err := spectest.BackendParams(sb, backend, nil)
		if err != nil {
			return err
		}
		cfg, err := spec.Config(sb, p, explore.Config{Dedup: true})
		if err != nil {
			return err
		}
		st, xerr := explore.ExploreSession(sb.New(p), cfg)
		var pe *explore.PropertyError
		switch {
		case xerr == nil:
			fmt.Printf("  backend=%-8s forbidden outcome unreachable (%d runs)\n", backend, st.Runs)
		case errors.As(xerr, &pe):
			fmt.Printf("  backend=%-8s REACHED: %v (script: %v)\n", backend, pe.Err, pe.Script)
		default:
			return xerr
		}
	}
	fmt.Println("\nthe three memory models are pairwise distinguishable: regular alone")
	fmt.Println("breaks reader monotonicity, tso alone breaks sb.")
	return nil
}
