// equivalence demonstrates Section 5: the §5.4 equivalence-class table and
// the Figure 7 chain of simulations, run end to end on 3-set agreement.
//
// Run with: go run ./examples/equivalence
package main

import (
	"fmt"
	"os"

	"mpcn/internal/algorithms"
	"mpcn/internal/core"
	"mpcn/internal/model"
	"mpcn/internal/sched"
	"mpcn/internal/tasks"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "equivalence: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Part 1: the §5.4 partition for t' = 8.
	const n = 10
	classes, err := model.Classes(n, 8)
	if err != nil {
		return err
	}
	fmt.Printf("§5.4: equivalence classes of ASM(%d, 8, x):\n", n)
	for _, c := range classes {
		fmt.Printf("  x in %v  ->  level %d, canonical %v\n", c.Xs, c.Level, c.Canonical)
	}

	// Part 2: Figure 7. ASM(6,5,2) and ASM(6,2,1) share level 2, so any
	// colorless task solvable in one is solvable in the other; the chain
	// below exercises all three simulations on 3-set agreement.
	m1 := model.ASM{N: 6, T: 5, X: 2}
	canon := m1.Canonical()
	fmt.Printf("\nFigure 7 chain: %v ≃ %v ≃ ASM(3,2,1)  (Equivalent: %v)\n",
		m1, canon, model.Equivalent(m1, canon))

	inputs := tasks.DistinctInputs(6)
	task := tasks.KSet{K: 3}

	r1, err := core.ForwardSim(algorithms.GroupedKSet{K: 3, X: 2}, inputs, m1, canon,
		sched.Config{Seed: 1})
	if err != nil {
		return fmt.Errorf("forward: %w", err)
	}
	if err := core.ValidateColorless(task, inputs, r1); err != nil {
		return fmt.Errorf("forward: %w", err)
	}
	fmt.Printf("  §3 forward : %v algorithm ran in %v    (%d simulators decided, %d steps)\n",
		m1, canon, r1.Sched.NumDecided(), r1.Sched.Steps)

	r2, err := core.GeneralizedBG(algorithms.SnapshotKSet{T: 2}, inputs, canon,
		sched.Config{Seed: 2})
	if err != nil {
		return fmt.Errorf("bg: %w", err)
	}
	if err := core.ValidateColorless(task, inputs, r2); err != nil {
		return fmt.Errorf("bg: %w", err)
	}
	fmt.Printf("  BG         : %v algorithm ran in ASM(3,2,1) (%d simulators decided, %d steps)\n",
		canon, r2.Sched.NumDecided(), r2.Sched.Steps)

	r3, err := core.ReverseSim(algorithms.SnapshotKSet{T: 2}, inputs, canon, m1,
		sched.Config{Seed: 3})
	if err != nil {
		return fmt.Errorf("reverse: %w", err)
	}
	if err := core.ValidateColorless(task, inputs, r3); err != nil {
		return fmt.Errorf("reverse: %w", err)
	}
	fmt.Printf("  §4 reverse : %v algorithm ran in %v    (%d simulators decided, %d steps)\n",
		canon, m1, r3.Sched.NumDecided(), r3.Sched.Steps)

	fmt.Println("\nall stages solved 3-set agreement: the chain certifies the equivalence")
	return nil
}
